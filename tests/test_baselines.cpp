// Tests for the comparator-framework planners and the Table I registry.
// Uses down-scaled devices so that the paper's qualitative feasibility
// ordering (DDP OOMs first, Megatron next, graph partitioning last) shows
// at test-sized models.
#include <gtest/gtest.h>

#include "baselines/data_parallel.h"
#include "baselines/feature_table.h"
#include "baselines/gpipe.h"
#include "baselines/layer_stages.h"
#include "baselines/megatron.h"
#include "baselines/pipedream.h"
#include "baselines/staged_eval.h"
#include "models/bert.h"
#include "models/resnet.h"

namespace rannc {
namespace {

BuiltModel test_bert(std::int64_t layers = 8) {
  BertConfig c;
  c.hidden = 128;
  c.layers = layers;
  c.seq_len = 32;
  c.vocab = 256;
  return build_bert(c);
}

ClusterSpec small_cluster(std::int64_t mem_mb) {
  ClusterSpec c;
  c.device.memory_bytes = mem_mb << 20;
  return c;
}

TEST(FeatureTable, MatchesPaperTableI) {
  const auto rows = framework_feature_table();
  ASSERT_EQ(rows.size(), 7u);
  const FrameworkFeatures& rannc = rows.back();
  EXPECT_EQ(rannc.name, "RaNNC (Ours)");
  EXPECT_EQ(rannc.partitioning, "Graph");
  EXPECT_TRUE(rannc.hybrid_parallelism);
  EXPECT_TRUE(rannc.automatic);
  EXPECT_TRUE(rannc.memory_estimation);
  EXPECT_TRUE(rannc.staleness_free);
  // RaNNC is the only row with all four properties.
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_FALSE(rows[i].hybrid_parallelism && rows[i].automatic &&
                 rows[i].memory_estimation && rows[i].staleness_free)
        << rows[i].name;
  }
  EXPECT_FALSE(render_feature_table().empty());
}

TEST(DataParallel, FeasibleWithRoomAndUsesAllDevices) {
  BuiltModel m = test_bert();
  ClusterSpec c = small_cluster(2048);
  BaselinePlan p = plan_data_parallel(m, c, Precision::FP32, 256);
  ASSERT_TRUE(p.feasible) << p.reason;
  EXPECT_EQ(p.replicas, c.total_devices());
  EXPECT_GT(p.throughput(256), 0);
}

TEST(DataParallel, OomWhenModelStateExceedsDevice) {
  BuiltModel m = test_bert();
  // Model state alone (16 B/param) exceeds a 16 MiB device.
  BaselinePlan p = plan_data_parallel(m, small_cluster(16), Precision::FP32, 256);
  EXPECT_FALSE(p.feasible);
  EXPECT_NE(p.reason.find("OOM"), std::string::npos);
}

TEST(DataParallel, GradientAccumulationRescuesActivationPressure) {
  BuiltModel m = test_bert();
  // Enough for model state but not for the full per-device batch at once.
  BaselinePlan p = plan_data_parallel(m, small_cluster(96), Precision::FP32, 512);
  if (p.feasible) EXPECT_GT(p.microbatches, 1);
}

TEST(Megatron, RejectsNonTransformer) {
  ResNetConfig rc;
  rc.depth = 50;
  rc.image_size = 32;
  BuiltModel m = build_resnet(rc);
  BaselinePlan p = plan_megatron(m, small_cluster(2048), Precision::FP32, 256);
  EXPECT_FALSE(p.feasible);
  EXPECT_NE(p.reason.find("Transformer"), std::string::npos);
}

TEST(Megatron, TensorParallelismIsPowerOfTwo) {
  BuiltModel m = test_bert();
  BaselinePlan p = plan_megatron(m, small_cluster(512), Precision::FP32, 256);
  ASSERT_TRUE(p.feasible) << p.reason;
  EXPECT_EQ(p.tensor_parallel & (p.tensor_parallel - 1), 0);
  EXPECT_EQ(p.microbatches, 1);  // no gradient accumulation
}

TEST(Megatron, TrainsLargerThanDataParallelButSmallerThanUnbounded) {
  // The qualitative Fig. 4 ordering at miniature scale: find a memory size
  // where DDP OOMs but Megatron still trains.
  BuiltModel m = test_bert(16);
  for (std::int64_t mem : {24, 32, 48, 64, 96}) {
    BaselinePlan dp = plan_data_parallel(m, small_cluster(mem), Precision::FP32, 256);
    BaselinePlan mg = plan_megatron(m, small_cluster(mem), Precision::FP32, 256);
    if (!dp.feasible && mg.feasible) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no memory size separated Megatron from DDP";
}

TEST(LayerStages, UniformSplitRequiresDivisibility) {
  BuiltModel m = test_bert(8);
  EXPECT_FALSE(uniform_layer_stages(m, 2).empty());
  EXPECT_FALSE(uniform_layer_stages(m, 4).empty());
  EXPECT_TRUE(uniform_layer_stages(m, 3).empty());  // 8 % 3 != 0
}

TEST(LayerStages, UniformSplitCoversAllTasks) {
  BuiltModel m = test_bert(8);
  const auto stages = uniform_layer_stages(m, 4);
  ASSERT_EQ(stages.size(), 4u);
  std::size_t total = 0;
  for (const auto& s : stages) total += s.size();
  EXPECT_EQ(total, m.graph.num_tasks());
}

TEST(LayerStages, BalancedSplitMinimizesBottleneck) {
  BuiltModel m = test_bert(8);
  GraphProfiler prof(m.graph, DeviceSpec{});
  const auto stages = balanced_layer_stages(m, prof, 4, 4);
  ASSERT_EQ(stages.size(), 4u);
  // Balanced split's bottleneck must not exceed the uniform split's.
  auto bottleneck = [&](const std::vector<std::vector<TaskId>>& st) {
    double worst = 0;
    for (const auto& s : st) {
      double t = 0;
      for (TaskId task : s)
        t += prof.task_time_f(task, 4, false) + prof.task_time_b(task, 4, false);
      worst = std::max(worst, t);
    }
    return worst;
  };
  EXPECT_LE(bottleneck(stages), bottleneck(uniform_layer_stages(m, 4)) + 1e-12);
}

TEST(GPipeHybrid, FeasiblePlanHasUniformReplicas) {
  BuiltModel m = test_bert(8);
  BaselinePlan p = plan_gpipe_hybrid(m, small_cluster(256), 256);
  ASSERT_TRUE(p.feasible) << p.reason;
  EXPECT_EQ(p.replicas * p.stages, ClusterSpec{}.total_devices());
  EXPECT_GE(p.microbatches, 1);
}

TEST(GPipeHybrid, RejectsNonTransformer) {
  ResNetConfig rc;
  rc.depth = 50;
  rc.image_size = 32;
  BaselinePlan p =
      plan_gpipe_hybrid(build_resnet(rc), small_cluster(2048), 256);
  EXPECT_FALSE(p.feasible);
}

TEST(GPipeModel, SingleNodeEightStages) {
  ResNetConfig rc;
  rc.depth = 50;
  rc.image_size = 32;
  BuiltModel m = build_resnet(rc);
  BaselinePlan p = plan_gpipe_model(m, small_cluster(1024), 128, 16);
  ASSERT_TRUE(p.feasible) << p.reason;
  EXPECT_EQ(p.stages, 8);
  EXPECT_EQ(p.replicas, 1);
  EXPECT_EQ(p.microbatches, 16);
}

TEST(PipeDream2BW, FasterThanGPipeHybridOnSameModel) {
  // Async 1F1B has no flush bubble, so with identical stage structure it
  // must not be slower (the paper's observation).
  BuiltModel m = test_bert(8);
  ClusterSpec c = small_cluster(512);
  BaselinePlan gp = plan_gpipe_hybrid(m, c, 256);
  BaselinePlan pd = plan_pipedream_2bw(m, c, 256);
  ASSERT_TRUE(gp.feasible);
  ASSERT_TRUE(pd.feasible);
  EXPECT_GE(pd.throughput(256), gp.throughput(256) * 0.99);
}

TEST(PipeDream2BW, DoubleBufferingCostsMemory) {
  // 2BW keeps two weight versions: with identical stage structure and a
  // single in-flight microbatch, its per-device footprint must exceed the
  // single-version GPipe accounting by exactly one weight copy per stage.
  BuiltModel m = test_bert(16);
  ClusterSpec c = small_cluster(2048);
  GraphProfiler prof(m.graph, c.device, Precision::FP32);
  const auto stages = uniform_layer_stages(m, 4);
  ASSERT_FALSE(stages.empty());
  const StagedEval gp = eval_stages(prof, c, stages, 4, 1, Precision::FP32,
                                    true, InflightPolicy::GPipeFlush, 0);
  const StagedEval pd = eval_stages(prof, c, stages, 4, 1, Precision::FP32,
                                    true, InflightPolicy::OneFOneB, 1);
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const ProfileResult& p = prof.profile(stages[i], 4);
    EXPECT_EQ(pd.mems[i] - gp.mems[i], 4 * p.num_params) << "stage " << i;
  }
}

}  // namespace
}  // namespace rannc
