// Tests for atomic-level partitioning (paper Section III-A): non-constant
// task identification, one-non-constant-task-per-component, and the cloning
// of constant chains that feed multiple components.
#include <gtest/gtest.h>

#include "graph/subgraph.h"
#include "models/bert.h"
#include "models/mlp.h"
#include "models/resnet.h"
#include "partition/atomic.h"

namespace rannc {
namespace {

/// x -> matmul(x, transpose(w)) — the paper's Fig. 2(b) pattern.
TaskGraph linear_with_transpose() {
  TaskGraph g("lin");
  ValueId x = g.add_input("x", Shape{4, 8});
  ValueId w = g.add_param("w", Shape{16, 8});
  ValueId wt = g.add_task("w_t", OpKind::Transpose, {w}, Shape{8, 16});
  ValueId y = g.add_task("mm", OpKind::MatMul, {x, wt}, Shape{4, 16});
  g.mark_output(y);
  return g;
}

TEST(NonConstant, TransposeOfParamIsConstant) {
  TaskGraph g = linear_with_transpose();
  const auto nc = find_non_constant_tasks(g);
  EXPECT_FALSE(nc[0]);  // w_t: consumes only a parameter
  EXPECT_TRUE(nc[1]);   // mm: consumes the model input
}

TEST(NonConstant, PropagatesThroughChains) {
  TaskGraph g("chain");
  ValueId x = g.add_input("x", Shape{4});
  ValueId a = g.add_task("a", OpKind::Relu, {x}, Shape{4});
  ValueId b = g.add_task("b", OpKind::Relu, {a}, Shape{4});
  g.mark_output(b);
  const auto nc = find_non_constant_tasks(g);
  EXPECT_TRUE(nc[0]);
  EXPECT_TRUE(nc[1]);
}

TEST(AtomicPartition, ConstantTaskJoinsItsConsumer) {
  TaskGraph g = linear_with_transpose();
  AtomicPartition ap = atomic_partition(g);
  ASSERT_EQ(ap.comps.size(), 1u);  // transpose merged into the matmul comp
  EXPECT_EQ(ap.comps[0].tasks.size(), 2u);
  EXPECT_EQ(ap.num_cloned_tasks, 0u);
}

TEST(AtomicPartition, SharedConstantChainIsClonedPerConsumer) {
  // One constant transpose feeding TWO non-constant matmuls: the paper
  // requires cloning the constant task (and predecessors) per target.
  TaskGraph g("shared");
  ValueId x = g.add_input("x", Shape{4, 8});
  ValueId w = g.add_param("w", Shape{8, 8});
  ValueId wt = g.add_task("w_t", OpKind::Transpose, {w}, Shape{8, 8});
  ValueId y1 = g.add_task("mm1", OpKind::MatMul, {x, wt}, Shape{4, 8});
  ValueId y2 = g.add_task("mm2", OpKind::MatMul, {x, wt}, Shape{4, 8});
  ValueId s = g.add_task("sum", OpKind::Add, {y1, y2}, Shape{4, 8});
  g.mark_output(s);

  AtomicPartition ap = atomic_partition(g);
  ASSERT_EQ(ap.comps.size(), 3u);  // mm1, mm2, sum
  EXPECT_EQ(ap.num_cloned_tasks, 1u);  // one extra copy of the transpose
  // Rebuilt graph has 5 tasks: 2 transposes + 2 matmuls + add.
  EXPECT_EQ(ap.graph.num_tasks(), 5u);
  int transposes = 0;
  for (const Task& t : ap.graph.tasks())
    if (t.kind == OpKind::Transpose) ++transposes;
  EXPECT_EQ(transposes, 2);
}

TEST(AtomicPartition, DeepConstantChainClonedWhole) {
  // Constant chain of length 2 shared by two consumers: both tasks cloned.
  TaskGraph g("deep");
  ValueId x = g.add_input("x", Shape{4, 8});
  ValueId w = g.add_param("w", Shape{8, 8});
  ValueId wt = g.add_task("w_t", OpKind::Transpose, {w}, Shape{8, 8});
  ValueId ws = g.add_task("w_scale", OpKind::Scale, {wt}, Shape{8, 8},
                          DType::F32, OpAttrs{}.set("scale", 2.0));
  ValueId y1 = g.add_task("mm1", OpKind::MatMul, {x, ws}, Shape{4, 8});
  ValueId y2 = g.add_task("mm2", OpKind::MatMul, {x, ws}, Shape{4, 8});
  ValueId s = g.add_task("sum", OpKind::Add, {y1, y2}, Shape{4, 8});
  g.mark_output(s);
  AtomicPartition ap = atomic_partition(g);
  EXPECT_EQ(ap.graph.num_tasks(), 7u);  // 2x(transpose+scale) + 2 mm + add
  EXPECT_EQ(ap.num_cloned_tasks, 2u);
}

TEST(AtomicPartition, OriginTaskMapsClonesBack) {
  TaskGraph g = linear_with_transpose();
  AtomicPartition ap = atomic_partition(g);
  ASSERT_EQ(ap.origin_task.size(), ap.graph.num_tasks());
  for (std::size_t t = 0; t < ap.graph.num_tasks(); ++t) {
    const TaskId orig = ap.origin_task[t];
    EXPECT_EQ(g.task(orig).kind, ap.graph.task(static_cast<TaskId>(t)).kind);
  }
}

struct ModelCase {
  const char* name;
  TaskGraph graph;
};

class AtomicInvariants : public ::testing::TestWithParam<int> {
 protected:
  static TaskGraph make(int which) {
    switch (which) {
      case 0: {
        BertConfig c;
        c.hidden = 128;
        c.layers = 2;
        c.seq_len = 16;
        c.vocab = 64;
        return build_bert(c).graph;
      }
      case 1: {
        ResNetConfig c;
        c.depth = 50;
        c.image_size = 32;
        return build_resnet(c).graph;
      }
      default: {
        MlpConfig c;
        return build_mlp(c).graph;
      }
    }
  }
};

TEST_P(AtomicInvariants, EveryComponentHasExactlyOneNonConstantTask) {
  TaskGraph g = make(GetParam());
  AtomicPartition ap = atomic_partition(g);
  const auto nc = find_non_constant_tasks(ap.graph);
  for (const AtomicComponent& c : ap.comps) {
    int count = 0;
    for (TaskId t : c.tasks)
      if (nc[static_cast<std::size_t>(t)]) ++count;
    EXPECT_EQ(count, 1);
    ASSERT_NE(c.non_constant, kNoTask);
    EXPECT_TRUE(nc[static_cast<std::size_t>(c.non_constant)]);
  }
}

TEST_P(AtomicInvariants, ComponentsPartitionTheGraph) {
  TaskGraph g = make(GetParam());
  AtomicPartition ap = atomic_partition(g);
  std::vector<int> seen(ap.graph.num_tasks(), 0);
  for (std::size_t i = 0; i < ap.comps.size(); ++i)
    for (TaskId t : ap.comps[i].tasks) {
      ++seen[static_cast<std::size_t>(t)];
      EXPECT_EQ(ap.comp_of_task[static_cast<std::size_t>(t)],
                static_cast<int>(i));
    }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_P(AtomicInvariants, ComponentsAreConvexAndTopologicallyOrdered) {
  TaskGraph g = make(GetParam());
  AtomicPartition ap = atomic_partition(g);
  TaskAdjacency adj(ap.graph);
  // Convexity of every component.
  for (const AtomicComponent& c : ap.comps) {
    std::vector<char> member(ap.graph.num_tasks(), 0);
    for (TaskId t : c.tasks) member[static_cast<std::size_t>(t)] = 1;
    EXPECT_TRUE(is_convex(adj, member));
  }
  // Quotient edges all point forward in component order.
  for (const Value& v : ap.graph.values()) {
    if (v.producer == kNoTask) continue;
    const int pc = ap.comp_of_task[static_cast<std::size_t>(v.producer)];
    for (TaskId c : v.consumers)
      EXPECT_LE(pc, ap.comp_of_task[static_cast<std::size_t>(c)]);
  }
}

TEST_P(AtomicInvariants, PreservesParameterCount) {
  TaskGraph g = make(GetParam());
  AtomicPartition ap = atomic_partition(g);
  EXPECT_EQ(ap.graph.num_params(), g.num_params());
}

INSTANTIATE_TEST_SUITE_P(Models, AtomicInvariants, ::testing::Range(0, 3));

TEST(AtomicPartition, BertComponentCountScalesWithLayers) {
  // The paper reports ~15,000 atomic components for a 256-layer BERT;
  // component count must grow linearly with depth.
  BertConfig c;
  c.hidden = 128;
  c.seq_len = 16;
  c.vocab = 64;
  c.layers = 2;
  const auto n2 = atomic_partition(build_bert(c).graph).comps.size();
  c.layers = 4;
  const auto n4 = atomic_partition(build_bert(c).graph).comps.size();
  EXPECT_GT(n4, n2);
  EXPECT_EQ(n4 - n2, 2 * ((n4 - n2) / 2));  // even: per-layer constant
}

}  // namespace
}  // namespace rannc
