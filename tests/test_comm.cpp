// Tests for the discrete-event communication fabric (`src/comm`): parity
// with the closed-form cost models when uncontended, contention
// monotonicity on shared links, byte conservation, bit-exact determinism
// under host-thread races, and the closable-channel / fabric-endpoint
// plumbing the pipeline runtime rides on.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/cluster_spec.h"
#include "comm/endpoint.h"
#include "comm/fabric.h"
#include "comm/oracle.h"
#include "runtime/channel.h"

namespace rannc {
namespace {

using comm::Fabric;

TEST(Fabric, TopologyFromClusterSpec) {
  ClusterSpec c;  // 4 nodes x 8 devices
  Fabric f(c);
  EXPECT_EQ(f.num_ranks(), 32);
  // 2 NVLink lanes per device + 2 NIC directions per node.
  EXPECT_EQ(f.num_links(), 2 * 32 + 2 * 4);
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(7), 0);
  EXPECT_EQ(f.node_of(8), 1);
  EXPECT_EQ(f.node_of(31), 3);
}

TEST(Fabric, UncontendedP2pMatchesClosedForm) {
  ClusterSpec c;
  const std::int64_t bytes = 16 << 20;
  {
    Fabric f(c);
    EXPECT_DOUBLE_EQ(f.p2p(0, 1, bytes), p2p_time(c, bytes, true));
  }
  {
    // Cross-node: the NIC is the bottleneck (inter_bw < intra_bw).
    Fabric f(c);
    EXPECT_DOUBLE_EQ(f.p2p(0, 8, bytes), p2p_time(c, bytes, false));
  }
  {
    // Zero-byte message costs exactly one latency.
    Fabric f(c);
    EXPECT_DOUBLE_EQ(f.p2p(0, 1, 0), c.intra_lat);
  }
}

TEST(Fabric, UncontendedRingAllreduceWithin5PercentOfClosedForm) {
  ClusterSpec c;
  const std::int64_t bytes = 64 << 20;
  {
    // All ranks on one node: every ring step uses distinct full-duplex
    // NVLink lanes, so the fabric should land on the analytic model.
    Fabric f(c);
    const double sim = f.ring_allreduce({0, 1, 2, 3, 4, 5, 6, 7}, bytes);
    const double ana = allreduce_time(c, bytes, 8, false);
    EXPECT_NEAR(sim, ana, 0.05 * ana);
  }
  {
    // One rank per node: each NIC carries one transfer per step, so the
    // inter-node closed form applies.
    Fabric f(c);
    const double sim = f.ring_allreduce({0, 8, 16, 24}, bytes);
    const double ana = allreduce_time(c, bytes, 4, true);
    EXPECT_NEAR(sim, ana, 0.05 * ana);
  }
}

TEST(Fabric, ReduceScatterPlusAllgatherEqualsAllreduce) {
  ClusterSpec c;
  const std::int64_t bytes = 8 << 20;
  const std::vector<int> ring{0, 1, 2, 3, 4, 5};
  Fabric whole(c);
  const double ar = whole.ring_allreduce(ring, bytes);
  Fabric halves(c);
  halves.reduce_scatter(ring, bytes);
  const double total = halves.allgather(ring, bytes);
  EXPECT_DOUBLE_EQ(total, ar);
}

TEST(Fabric, BroadcastBinomialTreeUncontended) {
  ClusterSpec c;
  const std::int64_t bytes = 4 << 20;
  Fabric f(c);
  // 8 ranks on one node -> 3 rounds, each one latency + payload.
  const double t = f.broadcast({0, 1, 2, 3, 4, 5, 6, 7}, 0, bytes);
  const double round = c.intra_lat + static_cast<double>(bytes) / c.intra_bw;
  EXPECT_NEAR(t, 3 * round, 1e-9);
}

TEST(Fabric, NicContentionIsMonotone) {
  ClusterSpec c;
  const double bytes = 32e6;
  Fabric alone(c);
  const double t_alone = alone.run_step({{0, 8, bytes}})[0];
  // Two concurrent cross-node transfers out of node 0 share its egress
  // NIC: each must take at least as long as either alone (here ~2x).
  Fabric both(c);
  const auto t = both.run_step({{0, 8, bytes}, {1, 16, bytes}});
  EXPECT_GE(t[0], t_alone);
  EXPECT_GE(t[1], t_alone);
  EXPECT_GT(t[0], 1.5 * t_alone);
}

TEST(Fabric, NvlinkLaneContentionIsMonotone) {
  ClusterSpec c;
  const double bytes = 8e6;
  Fabric alone(c);
  const double t_alone = alone.run_step({{0, 1, bytes}})[0];
  // Two sends out of the same device share its egress lane.
  Fabric both(c);
  const auto t = both.run_step({{0, 1, bytes}, {0, 2, bytes}});
  EXPECT_GE(t[0], t_alone);
  EXPECT_GE(t[1], t_alone);
}

TEST(Fabric, P2pConservesBytes) {
  ClusterSpec c;
  Fabric f(c);
  f.p2p(0, 5, 1000);
  f.p2p(5, 0, 500);
  f.p2p(2, 5, 250);
  EXPECT_EQ(f.bytes_sent(0), 1000);
  EXPECT_EQ(f.bytes_sent(5), 500);
  EXPECT_EQ(f.bytes_sent(2), 250);
  EXPECT_EQ(f.bytes_received(5), 1250);
  EXPECT_EQ(f.bytes_received(0), 500);
  std::int64_t sent = 0, received = 0;
  for (int r = 0; r < f.num_ranks(); ++r) {
    sent += f.bytes_sent(r);
    received += f.bytes_received(r);
  }
  EXPECT_EQ(sent, received);
}

TEST(Fabric, RejectsInvalidTransfers) {
  ClusterSpec c;
  Fabric f(c);
  EXPECT_THROW(f.p2p(0, 0, 100), std::invalid_argument);
  EXPECT_THROW(f.p2p(0, 99, 100), std::out_of_range);
  EXPECT_THROW(f.p2p(-1, 0, 100), std::out_of_range);
}

/// A mixed workload whose result signature covers collectives, contended
/// steps and per-rank clocks.
std::vector<double> workload_signature() {
  ClusterSpec c;
  Fabric f(c);
  std::vector<double> sig;
  sig.push_back(f.ring_allreduce({0, 1, 2, 3, 4, 5, 6, 7}, 123457));
  for (double x : f.run_step(
           {{0, 8, 1e6}, {1, 16, 2e6}, {2, 8, 3.5e5}, {9, 1, 7e5}}))
    sig.push_back(x);
  sig.push_back(f.broadcast({0, 3, 9, 17, 25}, 9, 1 << 20));
  sig.push_back(f.reduce_scatter({0, 1, 2, 3}, 999983));
  sig.push_back(f.allgather({4, 5, 6, 7}, 999983));
  for (int r = 0; r < f.num_ranks(); ++r) sig.push_back(f.clock(r));
  return sig;
}

TEST(Fabric, BitExactDeterminismAcrossThreadInterleavings) {
  const std::vector<double> expected = workload_signature();
  // Race many simulations (plus the shared fabric-oracle memo cache)
  // across host threads: virtual time must not observe host scheduling.
  ClusterSpec fc;
  fc.comm_model = CommModel::Fabric;
  const double oracle_expected = comm_allreduce_time(fc, 1 << 22, 16, true);
  std::vector<std::vector<double>> got(8);
  std::vector<double> oracle_got(8);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&, i] {
      for (int rep = 0; rep < 5; ++rep) {
        got[static_cast<std::size_t>(i)] = workload_signature();
        oracle_got[static_cast<std::size_t>(i)] =
            comm_allreduce_time(fc, 1 << 22, 16, true);
      }
    });
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k)
      EXPECT_EQ(got[static_cast<std::size_t>(i)][k], expected[k])
          << "thread " << i << " slot " << k;
    EXPECT_EQ(oracle_got[static_cast<std::size_t>(i)], oracle_expected);
  }
}

// ---- oracle dispatch -------------------------------------------------------

TEST(Oracle, AnalyticFlagMatchesClosedForms) {
  ClusterSpec c;  // comm_model defaults to Analytic
  EXPECT_DOUBLE_EQ(comm_p2p_time(c, 1 << 20, true), p2p_time(c, 1 << 20, true));
  EXPECT_DOUBLE_EQ(comm_allreduce_time(c, 1 << 20, 8, true),
                   allreduce_time(c, 1 << 20, 8, true));
  EXPECT_DOUBLE_EQ(comm_partitioner_time(c, 1 << 20),
                   partitioner_comm_time(c, 1 << 20));
  EXPECT_STREQ(make_comm_oracle(c)->name(), "analytic");
}

TEST(Oracle, FabricOracleUncontendedParity) {
  ClusterSpec c;
  c.comm_model = CommModel::Fabric;
  EXPECT_STREQ(make_comm_oracle(c)->name(), "fabric");
  const std::int64_t bytes = 64 << 20;
  // 8 consecutive ranks = one node = uncontended ring.
  const double sim = comm_allreduce_time(c, bytes, 8, false);
  const double ana = allreduce_time(c, bytes, 8, false);
  EXPECT_NEAR(sim, ana, 0.05 * ana);
  EXPECT_DOUBLE_EQ(comm_p2p_time(c, bytes, true), p2p_time(c, bytes, true));
  EXPECT_DOUBLE_EQ(comm_p2p_time(c, bytes, false), p2p_time(c, bytes, false));
}

TEST(Oracle, FabricPenalizesSharedNicOnSpanningAllreduce) {
  ClusterSpec c;
  c.comm_model = CommModel::Fabric;
  const std::int64_t bytes = 64 << 20;
  // 32 ranks round-robin over 4 nodes: 8 ring transfers share each NIC
  // per step, which the closed form cannot see.
  const double sim = comm_allreduce_time(c, bytes, 32, true);
  const double ana = allreduce_time(c, bytes, 32, true);
  EXPECT_GT(sim, ana);
  // More co-located ranks per node -> more NIC sharing -> slower than a
  // one-rank-per-node ring of the same span.
  const double spread = comm_allreduce_time(c, bytes, 4, true);
  EXPECT_GT(sim, spread);
}

TEST(Oracle, FabricBroadcastPositiveAndMonotoneInSize) {
  ClusterSpec c;
  c.comm_model = CommModel::Fabric;
  auto oracle = make_comm_oracle(c);
  const double small = oracle->broadcast(1 << 16, 8, false);
  const double large = oracle->broadcast(1 << 24, 8, false);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  EXPECT_DOUBLE_EQ(oracle->broadcast(1 << 20, 1, false), 0.0);
}

// ---- closable channel + fabric endpoint ------------------------------------

TEST(Channel, CloseUnblocksReceiverWithNullopt) {
  Channel<int> ch(4);
  std::optional<int> got = 0;
  std::thread receiver([&] { got = ch.recv(); });
  ch.close();
  receiver.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Channel, CloseUnblocksFullSender) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(1));
  bool sent = true;
  std::thread sender([&] { sent = ch.send(2); });  // blocks: channel full
  ch.close();
  sender.join();
  EXPECT_FALSE(sent);
  EXPECT_FALSE(ch.send(3));  // closed channels reject immediately
}

TEST(Channel, DrainsQueuedItemsAfterClose) {
  Channel<int> ch(4);
  ASSERT_TRUE(ch.send(1));
  ASSERT_TRUE(ch.send(2));
  ch.close();
  EXPECT_EQ(ch.recv(), 1);
  EXPECT_EQ(ch.recv(), 2);
  EXPECT_EQ(ch.recv(), std::nullopt);
}

TEST(FabricEndpoint, AccruesSimulatedTimeAndBytes) {
  ClusterSpec c;
  auto bytes_of = [](const std::vector<float>& v) {
    return static_cast<std::int64_t>(v.size() * sizeof(float));
  };
  comm::FabricEndpoint<std::vector<float>> ep(4, make_comm_oracle(c),
                                              /*same_node=*/true, bytes_of);
  ASSERT_TRUE(ep.send(std::vector<float>(1024)));
  ASSERT_TRUE(ep.recv().has_value());
  EXPECT_EQ(ep.sent_bytes(), 4096);
  EXPECT_EQ(ep.recv_bytes(), 4096);
  EXPECT_DOUBLE_EQ(ep.send_seconds(), p2p_time(c, 4096, true));
  EXPECT_DOUBLE_EQ(ep.recv_seconds(), p2p_time(c, 4096, true));
}

TEST(FabricEndpoint, NullOracleIsPlainChannel) {
  comm::FabricEndpoint<int> ep(4, nullptr, true, nullptr);
  ASSERT_TRUE(ep.send(7));
  EXPECT_EQ(ep.recv(), 7);
  EXPECT_EQ(ep.sent_bytes(), 0);
  EXPECT_DOUBLE_EQ(ep.send_seconds(), 0.0);
}

}  // namespace
}  // namespace rannc
