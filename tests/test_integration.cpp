// Integration tests: the full RaNNC flow from an unmodified model
// description to a partitioned, actually-executing pipeline — including the
// paper's loss-parity validation (Section IV-B: after the same number of
// steps, partitioned and reference training reach the same loss within
// 1e-3).
#include <gtest/gtest.h>

#include <cmath>

#include "models/bert.h"
#include "models/mlp.h"
#include "partition/auto_partitioner.h"
#include "partition/search.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/trainer.h"

namespace rannc {
namespace {

std::vector<TensorMap> make_microbatches(const TaskGraph& g, int count,
                                         std::uint64_t seed) {
  const ValueId x = g.input_values()[0];
  const ValueId y = g.input_values()[1];
  const Shape& xs = g.value(x).shape;
  std::vector<TensorMap> mbs;
  for (int j = 0; j < count; ++j) {
    TensorMap m;
    m.emplace(x, Tensor::uniform(xs, 1.0f, seed + static_cast<std::uint64_t>(j)));
    Tensor labels(Shape{xs.dims[0]});
    for (std::int64_t i = 0; i < xs.dims[0]; ++i)
      labels.at(i) = static_cast<float>((i + j) % 4);
    m.emplace(y, std::move(labels));
    mbs.push_back(std::move(m));
  }
  return mbs;
}

/// End-to-end: auto-partition an MLP with a miniature cluster whose devices
/// are too small for the whole model, then execute the resulting stages on
/// the pipeline runtime and compare against unpartitioned training.
TEST(EndToEnd, AutoPartitionedPipelineReachesSameLoss) {
  MlpConfig mc;
  mc.input_dim = 16;
  mc.hidden_dims = {32, 32, 32, 32};
  mc.num_classes = 4;
  mc.batch = 4;  // microbatch size baked into the graph
  BuiltModel m = build_mlp(mc);

  // Miniature cluster: 1 node x 4 devices, memory forcing >= 2 stages.
  SearchRequest cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 4;
  const std::int64_t model_state = 4 * m.graph.num_params() * 4;
  cfg.cluster.device.memory_bytes = model_state * 3 / 4;
  cfg.batch_size = 16;
  cfg.num_blocks = 8;
  cfg.optimizer = OptimizerKind::Adam;

  PartitionResult plan = auto_partition(m.graph, cfg).plan;
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  ASSERT_GE(plan.stages.size(), 2u) << "memory cap should force pipelining";

  // Execute the plan: stage task lists refer to plan.graph.
  std::vector<std::vector<TaskId>> stage_tasks;
  for (const StagePlan& s : plan.stages) stage_tasks.push_back(s.tasks);

  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.02f;
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 21;
  popt.recompute = true;  // RaNNC checkpoints when stages > 1 (Section IV-A)
  PipelineTrainer pipeline(*plan.graph, stage_tasks, popt);
  Trainer reference(*plan.graph, oc, /*seed=*/21);

  // Train on a fixed set of microbatches (memorization) so the loss
  // demonstrably decreases; fresh random labels would be unlearnable.
  const auto mbs = make_microbatches(*plan.graph, plan.microbatches, 7777);
  float pipe_loss = 0, ref_loss = 0;
  for (int step = 0; step < 40; ++step) {
    pipe_loss = pipeline.step(mbs);
    ref_loss = reference.step(mbs);
  }
  // Paper: "the difference in loss values ... was less than 1.0e-3".
  EXPECT_LT(std::abs(pipe_loss - ref_loss), 1e-3f);
  // And training actually learned something.
  EXPECT_LT(pipe_loss, 0.9f * std::log(4.0f));
}

TEST(EndToEnd, PlanStagesAreExecutableWithoutRecompute) {
  MlpConfig mc;
  mc.input_dim = 8;
  mc.hidden_dims = {16, 16};
  mc.num_classes = 4;
  mc.batch = 2;
  BuiltModel m = build_mlp(mc);
  SearchRequest cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 2;
  cfg.cluster.device.memory_bytes = 5 * m.graph.num_params() * 4;  // > model state, < state + activations: forces S >= 2
  cfg.batch_size = 8;
  cfg.num_blocks = 4;
  PartitionResult plan = auto_partition(m.graph, cfg).plan;
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  std::vector<std::vector<TaskId>> stage_tasks;
  for (const StagePlan& s : plan.stages) stage_tasks.push_back(s.tasks);
  PipelineOptions popt;
  popt.opt.lr = 0.05f;
  PipelineTrainer pipeline(*plan.graph, stage_tasks, popt);
  const auto mbs = make_microbatches(*plan.graph, std::max(1, plan.microbatches), 5);
  const float l1 = pipeline.step(mbs);
  const float l2 = pipeline.step(mbs);
  EXPECT_LT(l2, l1);  // optimizer applied across the stage shards
}


/// The paper's core promise end-to-end on a *Transformer*: an unmodified
/// tiny-BERT description, automatically partitioned, trained as a real
/// multi-threaded pipeline — losses must match unpartitioned training.
/// Exercises embedding, attention (batched matmuls, softmax, masking),
/// layernorm, GELU and cross-entropy through the stage boundaries.
TEST(EndToEnd, TinyBertPipelineMatchesReference) {
  BertConfig bc;
  bc.hidden = 32;
  bc.heads = 4;  // hidden/64 would be zero
  bc.layers = 2;
  bc.seq_len = 8;
  bc.vocab = 37;
  BuiltModel m = build_bert(bc);

  SearchRequest cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 3;
  cfg.cluster.device.memory_bytes = 5 * m.graph.num_params() * 4;
  cfg.batch_size = 8;
  cfg.num_blocks = 6;
  PartitionResult plan = auto_partition(m.graph, cfg).plan;
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  ASSERT_GE(plan.stages.size(), 2u);

  std::vector<std::vector<TaskId>> stage_tasks;
  for (const StagePlan& s : plan.stages) stage_tasks.push_back(s.tasks);
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.005f;
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 13;
  popt.recompute = true;
  PipelineTrainer pipeline(*plan.graph, stage_tasks, popt);
  Trainer reference(*plan.graph, oc, /*seed=*/13);

  const TaskGraph& g = *plan.graph;
  ValueId ids = -1, mask = -1, labels = -1;
  for (ValueId v : g.input_values()) {
    const std::string& n = g.value(v).name;
    if (n == "input_ids") ids = v;
    if (n == "attention_mask") mask = v;
    if (n == "mlm_labels") labels = v;
  }
  ASSERT_GE(ids, 0);
  ASSERT_GE(mask, 0);
  ASSERT_GE(labels, 0);

  // Fixed token sequences (memorizable).
  const int MB = std::max(1, plan.microbatches);
  std::vector<TensorMap> mbs;
  for (int j = 0; j < MB; ++j) {
    TensorMap mb;
    Tensor tok(Shape{bc.seq_len});
    Tensor lab(Shape{bc.seq_len});
    for (std::int64_t i = 0; i < bc.seq_len; ++i) {
      tok.at(i) = static_cast<float>((3 + 7 * i + j) % bc.vocab);
      lab.at(i) = static_cast<float>((5 + 11 * i + 2 * j) % bc.vocab);
    }
    mb.emplace(ids, std::move(tok));
    mb.emplace(mask, Tensor::zeros(Shape{1, bc.seq_len, bc.seq_len}));
    mb.emplace(labels, std::move(lab));
    mbs.push_back(std::move(mb));
  }

  float pipe_loss = 0, ref_loss = 0;
  for (int step = 0; step < 15; ++step) {
    pipe_loss = pipeline.step(mbs);
    ref_loss = reference.step(mbs);
    ASSERT_NEAR(pipe_loss, ref_loss, 1e-4f) << "step " << step;
  }
  EXPECT_LT(std::abs(pipe_loss - ref_loss), 1e-3f);  // the paper's threshold
  EXPECT_LT(pipe_loss, std::log(static_cast<float>(bc.vocab)));  // learning
}

}  // namespace
}  // namespace rannc
