// Tests for block-level partitioning (paper Section III-B): block count,
// convexity (acyclic block quotient), coverage, memory bounds, balance and
// the communication-reducing refinement.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/subgraph.h"
#include "models/bert.h"
#include "models/mlp.h"
#include "models/resnet.h"
#include "partition/atomic.h"
#include "partition/block.h"

namespace rannc {
namespace {

struct Built {
  AtomicPartition ap;
  std::unique_ptr<GraphProfiler> prof;
};

Built prepare(int which) {
  TaskGraph g = [&] {
    switch (which) {
      case 0: {
        BertConfig c;
        c.hidden = 128;
        c.layers = 4;
        c.seq_len = 16;
        c.vocab = 64;
        return build_bert(c).graph;
      }
      case 1: {
        ResNetConfig c;
        c.depth = 50;
        c.image_size = 32;
        return build_resnet(c).graph;
      }
      default: {
        MlpConfig c;
        c.hidden_dims = {64, 64, 64, 64, 64, 64};
        return build_mlp(c).graph;
      }
    }
  }();
  Built b{atomic_partition(g), nullptr};
  b.prof = std::make_unique<GraphProfiler>(b.ap.graph, DeviceSpec{});
  return b;
}

class BlockInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockInvariants, ProducesKConvexCoveringBlocks) {
  const auto [model, k] = GetParam();
  Built b = prepare(model);
  if (static_cast<int>(b.ap.comps.size()) < k) GTEST_SKIP();
  BlockPartitionConfig cfg;
  cfg.k = k;
  BlockPartition bp = block_partition(b.ap, *b.prof, cfg);

  EXPECT_EQ(static_cast<int>(bp.blocks.size()), k);

  // Coverage: every component in exactly one block.
  std::vector<int> seen(b.ap.comps.size(), 0);
  for (std::size_t i = 0; i < bp.blocks.size(); ++i)
    for (int c : bp.blocks[i].comps) {
      ++seen[static_cast<std::size_t>(c)];
      EXPECT_EQ(bp.block_of_comp[static_cast<std::size_t>(c)],
                static_cast<int>(i));
    }
  for (int s : seen) EXPECT_EQ(s, 1);

  // Convexity of every block at the task level.
  TaskAdjacency adj(b.ap.graph);
  for (const Block& blk : bp.blocks) {
    std::vector<char> member(b.ap.graph.num_tasks(), 0);
    for (TaskId t : blk.tasks) member[static_cast<std::size_t>(t)] = 1;
    EXPECT_TRUE(is_convex(adj, member));
  }

  // Topological chain: all value edges between blocks point forward.
  std::vector<int> block_of_task(b.ap.graph.num_tasks(), -1);
  for (std::size_t i = 0; i < bp.blocks.size(); ++i)
    for (TaskId t : bp.blocks[i].tasks)
      block_of_task[static_cast<std::size_t>(t)] = static_cast<int>(i);
  for (const Value& v : b.ap.graph.values()) {
    if (v.producer == kNoTask) continue;
    for (TaskId c : v.consumers)
      EXPECT_LE(block_of_task[static_cast<std::size_t>(v.producer)],
                block_of_task[static_cast<std::size_t>(c)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndK, BlockInvariants,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Values(2, 4, 8, 16)));

TEST(BlockBalance, RefinementImprovesOrMatchesBalance) {
  Built b = prepare(0);
  BlockPartitionConfig cfg;
  cfg.k = 8;
  auto imbalance = [](const BlockPartition& bp) {
    double mx = 0, sum = 0;
    for (const Block& blk : bp.blocks) {
      mx = std::max(mx, blk.time());
      sum += blk.time();
    }
    return mx / (sum / static_cast<double>(bp.blocks.size()));
  };
  cfg.balance_refinement = false;
  const double rough = imbalance(block_partition(b.ap, *b.prof, cfg));
  cfg.balance_refinement = true;
  const double refined = imbalance(block_partition(b.ap, *b.prof, cfg));
  EXPECT_LE(refined, rough + 1e-9);
}

TEST(BlockBalance, BlocksAreReasonablyBalanced) {
  Built b = prepare(0);
  BlockPartitionConfig cfg;
  cfg.k = 8;
  BlockPartition bp = block_partition(b.ap, *b.prof, cfg);
  double mx = 0, mn = 1e30;
  for (const Block& blk : bp.blocks) {
    mx = std::max(mx, blk.time());
    mn = std::min(mn, blk.time());
  }
  EXPECT_LT(mx / mn, 2.5) << "blocks are badly imbalanced";
}

TEST(BlockMemory, RespectsDeviceMemoryWhenFeasible) {
  Built b = prepare(2);  // MLP: small
  // Generous per-block budget: full graph / 2.
  const ProfileResult& whole = b.prof->profile(b.ap.graph.topo_order(), 1);
  BlockPartitionConfig cfg;
  cfg.k = 4;
  cfg.device_memory = 4 * whole.param_bytes + whole.act_bytes;
  BlockPartition bp = block_partition(b.ap, *b.prof, cfg);
  for (const Block& blk : bp.blocks)
    EXPECT_LE(4 * blk.param_bytes + blk.act_bytes, cfg.device_memory);
}

TEST(BlockPartition, TimesSumToComponentTimes) {
  Built b = prepare(2);
  BlockPartitionConfig cfg;
  cfg.k = 3;
  BlockPartition bp = block_partition(b.ap, *b.prof, cfg);
  double total_blocks = 0;
  for (const Block& blk : bp.blocks) total_blocks += blk.time();
  double total_tasks = 0;
  for (const Task& t : b.ap.graph.tasks())
    total_tasks += b.prof->task_time_f(t.id, cfg.profile_batch, false) +
                   b.prof->task_time_b(t.id, cfg.profile_batch, false);
  EXPECT_NEAR(total_blocks, total_tasks, 1e-9);
}

TEST(BlockPartition, KEqualsOneMergesEverything) {
  Built b = prepare(2);
  BlockPartitionConfig cfg;
  cfg.k = 1;
  BlockPartition bp = block_partition(b.ap, *b.prof, cfg);
  ASSERT_EQ(bp.blocks.size(), 1u);
  EXPECT_EQ(bp.blocks[0].tasks.size(), b.ap.graph.num_tasks());
  EXPECT_EQ(bp.cut_bytes, 0);
}

TEST(BlockPartition, RejectsEmptyPartition) {
  AtomicPartition empty;
  GraphProfiler prof(empty.graph, DeviceSpec{});
  EXPECT_THROW(block_partition(empty, prof, BlockPartitionConfig{}),
               std::invalid_argument);
}

TEST(BlockPartition, CutBytesAreNonNegativeAndBounded) {
  Built b = prepare(0);
  BlockPartitionConfig cfg;
  cfg.k = 8;
  BlockPartition bp = block_partition(b.ap, *b.prof, cfg);
  std::int64_t total_act = 0;
  for (const Block& blk : bp.blocks) total_act += blk.act_bytes;
  EXPECT_GE(bp.cut_bytes, 0);
  EXPECT_LT(bp.cut_bytes, total_act);
}

}  // namespace
}  // namespace rannc
