// Tests for the branch-and-bound partition search (PR 10): the pruned and
// sharded engines must return plans bit-identical to the exhaustive sweep
// at every thread and shard count, each prune sub-switch alone must
// preserve that identity, the sharded counters must be deterministic, and
// the stage-DP bound hooks must be provably admissibility-sensitive (an
// inadmissible bound visibly loses the optimum — the negative control that
// keeps the identity tests honest).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "models/bert.h"
#include "models/mlp.h"
#include "models/moe.h"
#include "partition/auto_partitioner.h"
#include "partition/plan_io.h"
#include "partition/profile_memo.h"
#include "partition/search.h"
#include "partition/stage_dp.h"
#include "serve/fingerprint.h"
#include "serve/plan_store.h"

namespace rannc {
namespace {

// ---- the small-geometry model zoo ----------------------------------------

BertConfig tiny_bert() {
  BertConfig c;
  c.hidden = 128;
  c.layers = 4;
  c.seq_len = 32;
  c.vocab = 256;
  return c;
}

MlpConfig deep_mlp() {
  MlpConfig c;
  c.input_dim = 64;
  c.hidden_dims = {128, 128, 128, 128};
  c.num_classes = 16;
  return c;
}

MoeConfig tiny_moe() {
  MoeConfig c;
  c.hidden = 64;
  c.layers = 2;
  c.seq_len = 16;
  c.vocab = 128;
  c.experts = 4;
  c.ffn_mult = 2;
  return c;
}

struct ZooModel {
  const char* name;
  BuiltModel built;
};

std::vector<ZooModel> zoo() {
  std::vector<ZooModel> z;
  z.push_back({"bert", build_bert(tiny_bert())});
  z.push_back({"mlp", build_mlp(deep_mlp())});
  z.push_back({"moe", build_moe(tiny_moe())});
  return z;
}

SearchRequest base_request(std::int64_t batch = 64) {
  SearchRequest req;
  req.cluster.num_nodes = 2;
  req.cluster.devices_per_node = 2;
  req.batch_size = batch;
  req.budget.threads = 1;
  return req;
}

SearchRequest exhaustive(const SearchRequest& req) {
  SearchRequest e = req;
  e.prune.enabled = false;
  e.shard.shards = 1;
  return e;
}

// ---- plan identity: exhaustive vs pruned vs sharded ----------------------

TEST(SearchPrune, PlanIdentityMatrixAcrossThreadsAndShards) {
  for (const ZooModel& m : zoo()) {
    const SearchRequest base = base_request();
    const PartitionResult ex = auto_partition(m.built.graph, exhaustive(base)).plan;
    ASSERT_TRUE(ex.feasible) << m.name << ": " << ex.infeasible_reason;
    const std::string want = plan_to_json(ex);

    for (int threads : {1, 4}) {
      for (int shards : {1, 4}) {
        SearchRequest req = base;
        req.budget.threads = threads;
        req.shard.shards = shards;
        const SearchResult sr = auto_partition(m.built.graph, req);
        ASSERT_TRUE(sr.feasible())
            << m.name << " threads=" << threads << " shards=" << shards;
        EXPECT_EQ(plan_to_json(sr.plan), want)
            << m.name << " threads=" << threads << " shards=" << shards;
        EXPECT_EQ(sr.stats().threads_used, threads);
        EXPECT_EQ(sr.stats().shards_used, shards);
      }
    }
  }
}

TEST(SearchPrune, EachPruneSwitchAlonePreservesThePlan) {
  const BuiltModel m = build_bert(tiny_bert());
  const SearchRequest base = base_request();
  const std::string want =
      plan_to_json(auto_partition(m.graph, exhaustive(base)).plan);

  const auto run_with = [&](bool mem, bool comp, bool inc) {
    SearchRequest req = base;
    req.prune.enabled = true;
    req.prune.memory_bounds = mem;
    req.prune.compute_bounds = comp;
    req.prune.incumbent = inc;
    return auto_partition(m.graph, req);
  };
  EXPECT_EQ(plan_to_json(run_with(true, false, false).plan), want)
      << "memory_bounds alone";
  EXPECT_EQ(plan_to_json(run_with(false, true, false).plan), want)
      << "compute_bounds alone";
  EXPECT_EQ(plan_to_json(run_with(false, false, true).plan), want)
      << "incumbent alone";
  EXPECT_EQ(plan_to_json(run_with(true, true, true).plan), want)
      << "all switches";
}

TEST(SearchPrune, PrunedSearchVisitsNoMoreCellsAndActuallyCuts) {
  const BuiltModel m = build_bert(tiny_bert());
  const SearchRequest base = base_request();

  const SearchResult ex = auto_partition(m.graph, exhaustive(base));
  SearchRequest pr = base;  // defaults: prune on, shards 1, threads 1
  const SearchResult bb = auto_partition(m.graph, pr);

  ASSERT_TRUE(ex.feasible());
  ASSERT_TRUE(bb.feasible());
  // Cuts only ever remove work from the sweep.
  EXPECT_LE(bb.stats().dp_cells_visited, ex.stats().dp_cells_visited);
  // The exhaustive engine reports no prune activity at all.
  EXPECT_EQ(ex.prune().jobs_pruned, 0);
  EXPECT_EQ(ex.prune().ranges_pruned(), 0);
  EXPECT_EQ(ex.prune().columns_pruned, 0);
  EXPECT_EQ(ex.prune().paths_pruned, 0);
  EXPECT_EQ(ex.prune().incumbent_updates, 0);
  // The pruned engine demonstrably did cut something on this geometry.
  const PruneStats& ps = bb.prune();
  EXPECT_GT(ps.jobs_pruned + ps.jobs_dominated + ps.ranges_pruned() +
                ps.columns_pruned + ps.paths_pruned,
            0);
  EXPECT_GT(ps.incumbent_updates, 0);
}

TEST(SearchPrune, WinnerCandidateIsNeverPrunedAndKeepsItsEstimate) {
  const BuiltModel m = build_bert(tiny_bert());
  const SearchRequest base = base_request();
  const SearchResult ex = auto_partition(m.graph, exhaustive(base));
  const SearchResult bb = auto_partition(m.graph, base);
  ASSERT_TRUE(ex.feasible());
  ASSERT_TRUE(bb.feasible());

  EXPECT_DOUBLE_EQ(bb.plan.est_iteration_time, ex.plan.est_iteration_time);

  const auto winner = [&](const SearchResult& r) -> const CandidateTrace* {
    for (const CandidateTrace& c : r.stats().candidates)
      if (c.nodes == r.plan.nodes_used &&
          c.stages == static_cast<int>(r.plan.stages.size()) &&
          c.microbatches == r.plan.microbatches)
        return &c;
    return nullptr;
  };
  const CandidateTrace* wex = winner(ex);
  const CandidateTrace* wbb = winner(bb);
  ASSERT_NE(wex, nullptr);
  ASSERT_NE(wbb, nullptr);
  EXPECT_FALSE(wbb->pruned);
  EXPECT_TRUE(wbb->feasible);
  // The winner's estimate survives pruning bit-exactly.
  EXPECT_DOUBLE_EQ(wbb->est_iteration, wex->est_iteration);
  // Every pruned trace carries no estimate (it never finished its DP)...
  for (const CandidateTrace& c : bb.stats().candidates) {
    if (c.pruned) {
      EXPECT_FALSE(c.feasible);
    }
  }
  // ...and the exhaustive engine marks nothing pruned.
  for (const CandidateTrace& c : ex.stats().candidates)
    EXPECT_FALSE(c.pruned);
}

// ---- sharded-mode determinism --------------------------------------------

TEST(SearchPrune, ShardedCountersAreThreadCountInvariant) {
  const BuiltModel m = build_bert(tiny_bert());
  SearchRequest req = base_request();
  req.shard.shards = 4;

  req.budget.threads = 1;
  const SearchResult a = auto_partition(m.graph, req);
  req.budget.threads = 4;
  const SearchResult b = auto_partition(m.graph, req);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());

  EXPECT_EQ(plan_to_json(a.plan), plan_to_json(b.plan));
  // Frozen-incumbent rounds make every work counter deterministic.
  EXPECT_EQ(a.stats().dp_cells_visited, b.stats().dp_cells_visited);
  EXPECT_EQ(a.stats().profile_queries, b.stats().profile_queries);
  EXPECT_EQ(a.prune().jobs_pruned, b.prune().jobs_pruned);
  EXPECT_EQ(a.prune().jobs_dominated, b.prune().jobs_dominated);
  EXPECT_EQ(a.prune().ranges_mem_pruned, b.prune().ranges_mem_pruned);
  EXPECT_EQ(a.prune().ranges_bound_pruned, b.prune().ranges_bound_pruned);
  EXPECT_EQ(a.prune().columns_pruned, b.prune().columns_pruned);
  EXPECT_EQ(a.prune().paths_pruned, b.prune().paths_pruned);
  EXPECT_EQ(a.prune().incumbent_updates, b.prune().incumbent_updates);
  EXPECT_EQ(a.prune().shard_rounds, b.prune().shard_rounds);
  // The simulated barrier allreduces spent (identical) virtual fabric time.
  EXPECT_GT(a.prune().shard_rounds, 0);
  EXPECT_GT(a.prune().shard_sync_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.prune().shard_sync_seconds, b.prune().shard_sync_seconds);
}

// ---- budget interplay ----------------------------------------------------

TEST(SearchPrune, PrunedSearchFinishesInsideTheExhaustiveCellDemand) {
  const BuiltModel m = build_bert(tiny_bert());
  const SearchRequest base = base_request();
  const SearchResult ex = auto_partition(m.graph, exhaustive(base));
  ASSERT_TRUE(ex.feasible());

  // A budget equal to the exhaustive demand can never abort the pruned
  // engine (cuts only shrink the visit count), and the plan is unchanged.
  SearchRequest capped = base;
  capped.budget.max_dp_cells = ex.stats().dp_cells_visited;
  const SearchResult bb = auto_partition(m.graph, capped);
  ASSERT_TRUE(bb.feasible()) << bb.plan.infeasible_reason;
  EXPECT_EQ(plan_to_json(bb.plan), plan_to_json(ex.plan));
}

// ---- request validation ---------------------------------------------------

TEST(SearchPrune, ValidateRejectsBadShardAndCellBudget) {
  SearchRequest req = base_request();
  req.shard.shards = 0;
  req.budget.max_dp_cells = -1;
  const std::vector<Diagnostic> diags = req.validate();
  bool shard = false, cells = false;
  for (const Diagnostic& d : diags) {
    if (d.code == DiagCode::BadShardCount) shard = true;
    if (d.code == DiagCode::BadCellBudget) cells = true;
  }
  EXPECT_TRUE(shard);
  EXPECT_TRUE(cells);
  const BuiltModel m = build_mlp(deep_mlp());
  EXPECT_THROW(auto_partition(m.graph, req), std::invalid_argument);
}

// ---- stage-DP bound hooks: admissibility sensitivity ----------------------

/// Synthetic ramp workload for direct form_stage_dp probing.
struct SyntheticUnits {
  std::vector<double> w;
  std::vector<double> mem;

  [[nodiscard]] RangeProfileFn fn() const {
    return [this](int lo, int hi, std::int64_t bsize, int, int) {
      StageProfile p;
      double tw = 0, tm = 0;
      for (int i = lo; i < hi; ++i) {
        tw += w[static_cast<std::size_t>(i)];
        tm += mem[static_cast<std::size_t>(i)];
      }
      p.t_f = tw * static_cast<double>(bsize);
      p.t_b = 2 * p.t_f;
      p.mem = static_cast<std::int64_t>(tm * static_cast<double>(bsize));
      return p;
    };
  }
};

SyntheticUnits ramp_units(int n) {
  SyntheticUnits u;
  for (int i = 0; i < n; ++i) {
    u.w.push_back(1.0 + 0.1 * i);
    u.mem.push_back(8.0);
  }
  return u;
}

StageDpInput dp_input(const SyntheticUnits& u, int S, int D) {
  StageDpInput in;
  in.num_units = static_cast<int>(u.w.size());
  in.num_stages = S;
  in.num_devices = D;
  in.batch_size = 256;
  in.replica_factor = 1;
  in.microbatches = 4;
  in.device_memory = 1 << 30;
  in.profile = u.fn();
  return in;
}

/// The exact admissible range bound for the synthetic profile: its value at
/// the smallest reachable per-replica microbatch (most devices assigned).
RangeBoundFn admissible_bound(const SyntheticUnits& u,
                              const StageDpInput& in) {
  const RangeProfileFn profile = u.fn();
  const std::int64_t bs = in.batch_size;
  const int R = in.replica_factor, MB = in.microbatches, D = in.num_devices;
  const int S = in.num_stages;
  return [profile, bs, R, MB, D, S](int lo, int hi) {
    std::int64_t bsize = bs / R / MB / (D - S + 1);
    if (bsize < 1) bsize = 1;
    const StageProfile p = profile(lo, hi, bsize, MB, S);
    StageBound b;
    b.time = p.t_f + p.t_b;
    b.mem = p.mem;
    return b;
  };
}

TEST(StageDpBounds, AdmissibleBoundKeepsTheOptimum) {
  const SyntheticUnits u = ramp_units(16);
  StageDpInput in = dp_input(u, 3, 6);
  const StageDpSolution plain = form_stage_dp(in);
  ASSERT_TRUE(plain.feasible);

  // Arm every hook with a finished incumbent exactly at the optimum: all
  // cuts are strict, so even the tightest admissible setup keeps the
  // winning solution bit-identical.
  StageDpInput armed = in;
  armed.bound = admissible_bound(u, in);
  armed.prune_memory = true;
  armed.prune_structural = true;
  std::vector<double> suffix(static_cast<std::size_t>(in.num_units) + 1, 0.0);
  const RangeProfileFn profile = u.fn();
  for (int b = in.num_units - 1; b >= 0; --b) {
    const StageProfile p = profile(b, b + 1, 1, in.microbatches, in.num_stages);
    suffix[static_cast<std::size_t>(b)] =
        std::max(suffix[static_cast<std::size_t>(b) + 1], p.t_f + p.t_b);
  }
  armed.suffix_bound = suffix.data();
  armed.job_bound = suffix[0];
  armed.est_scale = static_cast<double>(in.microbatches);
  const std::atomic<std::uint64_t> incumbent{
      std::bit_cast<std::uint64_t>(armed.est_scale * plain.value())};
  armed.incumbent = &incumbent;

  const StageDpSolution pruned = form_stage_dp(armed);
  ASSERT_TRUE(pruned.feasible);
  EXPECT_FALSE(pruned.dominated);
  EXPECT_EQ(pruned.stage_end, plain.stage_end);
  EXPECT_EQ(pruned.stage_devices, plain.stage_devices);
  EXPECT_DOUBLE_EQ(pruned.max_tf, plain.max_tf);
  EXPECT_DOUBLE_EQ(pruned.max_tb, plain.max_tb);
  EXPECT_LE(pruned.dp_cells_visited, plain.dp_cells_visited);
}

TEST(StageDpBounds, InadmissibleTimeBoundLosesTheOptimum) {
  // Negative control: inflate the range bound 10x (an OVERestimate, hence
  // inadmissible) and hand the DP the true optimum as incumbent. The cuts
  // now fire on winner ranges, so the returned solution is strictly worse
  // or gone — proof that the identity tests above genuinely depend on
  // admissibility rather than on the hooks being ignored.
  const SyntheticUnits u = ramp_units(16);
  StageDpInput in = dp_input(u, 3, 6);
  const StageDpSolution plain = form_stage_dp(in);
  ASSERT_TRUE(plain.feasible);

  StageDpInput bad = in;
  const RangeBoundFn good = admissible_bound(u, in);
  bad.bound = [good](int lo, int hi) {
    StageBound b = good(lo, hi);
    b.time *= 10.0;
    return b;
  };
  bad.est_scale = static_cast<double>(in.microbatches);
  const std::atomic<std::uint64_t> incumbent{
      std::bit_cast<std::uint64_t>(bad.est_scale * plain.value())};
  bad.incumbent = &incumbent;

  const StageDpSolution wrong = form_stage_dp(bad);
  EXPECT_GT(wrong.ranges_bound_pruned, 0);
  const bool lost_optimum =
      !wrong.feasible || wrong.value() > plain.value() ||
      wrong.stage_end != plain.stage_end;
  EXPECT_TRUE(lost_optimum);
}

TEST(StageDpBounds, InadmissibleMemoryFloorLosesFeasibility) {
  // Same control for the memory floor: an inflated floor marks every range
  // infeasible and the DP finds nothing, while the admissible floor keeps
  // the exact solution (checked in AdmissibleBoundKeepsTheOptimum).
  const SyntheticUnits u = ramp_units(12);
  StageDpInput in = dp_input(u, 3, 6);
  ASSERT_TRUE(form_stage_dp(in).feasible);

  StageDpInput bad = in;
  bad.prune_memory = true;
  bad.bound = [&](int, int) {
    StageBound b;
    b.time = 0;
    b.mem = std::numeric_limits<std::int64_t>::max();
    return b;
  };
  const StageDpSolution wrong = form_stage_dp(bad);
  EXPECT_FALSE(wrong.feasible);
  EXPECT_GT(wrong.ranges_mem_pruned, 0);
}

// ---- serve warm start across engine modes ---------------------------------

TEST(SearchPrune, PlanStoreKeyIgnoresPruneShardAndThreads) {
  const serve::Fingerprint fp =
      serve::fingerprint_graph(build_mlp(deep_mlp()).graph);
  const SearchRequest a = base_request();

  SearchRequest b = exhaustive(a);
  b.budget.threads = 8;
  b.profile_memo = false;
  SearchRequest c = a;
  c.shard.shards = 4;
  c.prune.memory_bounds = false;

  // Plans are bit-identical across these knobs, so the store must hand a
  // sharded served search the memo an exhaustive search wrote (the warm
  // sibling fix) — which requires the keys to collide exactly.
  EXPECT_EQ(serve::make_plan_key(fp, a), serve::make_plan_key(fp, b));
  EXPECT_EQ(serve::make_plan_key(fp, a), serve::make_plan_key(fp, c));

  // A genuinely different geometry still splits the key.
  SearchRequest d = a;
  d.batch_size = 2 * a.batch_size;
  EXPECT_NE(serve::make_plan_key(fp, a), serve::make_plan_key(fp, d));
}

TEST(SearchPrune, ShardedSearchRunsWarmOffAnExhaustiveMemo) {
  const BuiltModel m = build_mlp(deep_mlp());
  SearchRequest cold = exhaustive(base_request());
  auto memo = std::make_shared<ProfileMemo>();
  cold.shared_memo = memo;
  const SearchResult first = auto_partition(m.graph, cold);
  ASSERT_TRUE(first.feasible());
  ASSERT_GT(memo->size(), 0u);

  // The sharded pruned engine routes every rank through the shared memo,
  // so an exhaustive donor answers most of its profile queries (the bound
  // evaluations probe extra microbatch floors, so a few misses remain).
  SearchRequest warm = base_request();
  warm.budget.threads = 4;
  warm.shard.shards = 4;
  warm.shared_memo = memo;
  const SearchResult second = auto_partition(m.graph, warm);
  ASSERT_TRUE(second.feasible());
  EXPECT_LT(second.stats().memo_misses, first.stats().memo_misses);
  EXPECT_GT(second.stats().memo_hits, 0);
  EXPECT_GT(second.stats().memo_hit_rate(), 0.5);
  EXPECT_EQ(plan_to_json(second.plan), plan_to_json(first.plan));
}

}  // namespace
}  // namespace rannc
