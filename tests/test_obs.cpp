// Tests for the observability layer (src/obs): trace-event JSON validity,
// bit-identical virtual-time traces across thread counts, metric
// instrument semantics, the zero-events-when-disabled gate, concurrent
// recording (exercised under TSAN in CI), the leveled logger, and the
// unified ASCII timeline renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/cluster_spec.h"
#include "comm/fabric.h"
#include "models/bert.h"
#include "obs/attribution.h"
#include "obs/critpath.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/auto_partitioner.h"
#include "partition/plan_io.h"
#include "pipeline/schedule.h"

namespace rannc {
namespace {

// Detaches the global recorder (and restores the default log sink/level)
// even when a test fails mid-way, so state never leaks across tests.
struct ObsGuard {
  ~ObsGuard() {
    obs::set_recorder(nullptr);
    obs::set_log_sink(nullptr);
    obs::set_log_level(obs::LogLevel::Warn);
  }
};

// ---- minimal JSON syntax checker ------------------------------------------
// Recursive-descent recognizer for the full JSON grammar; enough to assert
// that emitted documents are well-formed without a third-party parser.

struct JsonChecker {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::string(t).size();
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-'))
      ++i;
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') {
      ++i;
      ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      for (;;) {
        ws();
        if (!string()) return false;
        ws();
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == '}') {
          ++i;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++i;
      ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      for (;;) {
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == ']') {
          ++i;
          return true;
        }
        return false;
      }
    }
    if (c == '"') return string();
    if (c == 't') return lit("true");
    if (c == 'f') return lit("false");
    if (c == 'n') return lit("null");
    return number();
  }
};

bool json_well_formed(const std::string& doc) {
  JsonChecker c{doc};
  if (!c.value()) return false;
  c.ws();
  return c.i == doc.size();
}

TEST(ObsJson, CheckerAcceptsAndRejects) {
  EXPECT_TRUE(json_well_formed(R"({"a":[1,2.5e-3,"x\"y",true,null]})"));
  EXPECT_FALSE(json_well_formed(R"({"a":1,})"));
  EXPECT_FALSE(json_well_formed(R"([1,2)"));
  EXPECT_FALSE(json_well_formed(R"({"a":1} trailing)"));
}

TEST(ObsJson, HelpersEscapeAndFormat) {
  EXPECT_EQ(obs::json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(obs::json_double(2.0), "2");
  // Non-finite values must not leak bare inf/nan into JSON documents.
  EXPECT_TRUE(json_well_formed(obs::json_double(1.0 / 0.0)));
}

// ---- trace recorder -------------------------------------------------------

TEST(ObsTrace, EmittedDocumentIsValidJson) {
  ObsGuard guard;
  obs::TraceRecorder rec;
  obs::set_recorder(&rec);
  {
    obs::Scope sc("outer");
    sc.arg("n", 3);
    sc.arg("ratio", 0.5);
    sc.arg("label", "a\"b");
    obs::Scope inner([] { return std::string("inner lazy"); }, "test");
  }
  rec.counter(obs::Domain::SimFabric, 2, "bw_share", 1.0,
              "\"bytes_per_s\":125000000");
  rec.instant(obs::Domain::Search, 0, "marker", "test", 5.0);
  rec.set_track_name(obs::Domain::SimSchedule, 0, "stage 0");
  obs::set_recorder(nullptr);

  const std::string doc = rec.json();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_TRUE(json_well_formed(rec.events_json(obs::Domain::SimSchedule)));
  EXPECT_GE(rec.event_count(), 4u);
}

TEST(ObsTrace, ZeroEventsWhenDisabled) {
  ObsGuard guard;
  obs::TraceRecorder rec;  // never attached
  ASSERT_EQ(obs::recorder(), nullptr);
  EXPECT_FALSE(obs::enabled());
  {
    obs::Scope sc("should not record");
    EXPECT_FALSE(sc.active());
    sc.arg("n", 1);
    bool name_built = false;
    obs::Scope lazy([&] {
      name_built = true;
      return std::string("never");
    });
    EXPECT_FALSE(name_built);  // lazy name must not be built when disabled
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(ObsTrace, TracedPlanBitIdenticalToUntraced) {
  ObsGuard guard;
  BertConfig bc;
  bc.hidden = 128;
  bc.layers = 4;
  bc.seq_len = 32;
  bc.vocab = 256;
  const BuiltModel m = build_bert(bc);
  SearchRequest cfg;
  cfg.batch_size = 64;
  cfg.budget.threads = 2;

  const PartitionResult untraced = auto_partition(m.graph, cfg).plan;
  ASSERT_TRUE(untraced.feasible) << untraced.infeasible_reason;

  obs::TraceRecorder rec;
  obs::set_recorder(&rec);
  const PartitionResult traced = auto_partition(m.graph, cfg).plan;
  obs::set_recorder(nullptr);
  ASSERT_TRUE(traced.feasible);

  // Tracing must never feed back into the search.
  EXPECT_EQ(plan_to_json(traced), plan_to_json(untraced));
  EXPECT_GT(rec.event_count(), 0u);
}

// Runs search + virtual-time replay (schedule + fabric) at a given thread
// count and returns the canonical JSON of both sim domains.
std::pair<std::string, std::string> sim_trace_at_threads(int threads) {
  BertConfig bc;
  bc.hidden = 128;
  bc.layers = 4;
  bc.seq_len = 32;
  bc.vocab = 256;
  const BuiltModel m = build_bert(bc);
  SearchRequest cfg;
  cfg.batch_size = 64;
  cfg.budget.threads = threads;

  obs::TraceRecorder rec;
  obs::set_recorder(&rec);
  const PartitionResult plan = auto_partition(m.graph, cfg).plan;
  EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;
  EXPECT_EQ(plan.stats.threads_used, threads);

  const int S = static_cast<int>(plan.stages.size());
  std::vector<StageTimes> st(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s)
    st[static_cast<std::size_t>(s)] = {
        plan.stages[static_cast<std::size_t>(s)].t_f,
        plan.stages[static_cast<std::size_t>(s)].t_b, 0.0};
  const ScheduleResult sched = simulate_gpipe(st, plan.microbatches);
  trace_schedule(rec, sched, S);

  comm::Fabric fabric(cfg.cluster);
  fabric.set_recorder(&rec);
  std::vector<int> offset(static_cast<std::size_t>(S) + 1, 0);
  for (int s = 0; s < S; ++s)
    offset[static_cast<std::size_t>(s) + 1] =
        offset[static_cast<std::size_t>(s)] +
        plan.stages[static_cast<std::size_t>(s)].devices;
  for (int s = 0; s + 1 < S; ++s) {
    const std::int64_t bytes =
        plan.stages[static_cast<std::size_t>(s)].comm_out_bytes;
    if (bytes > 0)
      fabric.p2p(offset[static_cast<std::size_t>(s)],
                 offset[static_cast<std::size_t>(s) + 1], bytes);
  }
  fabric.set_recorder(nullptr);
  obs::set_recorder(nullptr);

  return {rec.events_json(obs::Domain::SimSchedule),
          rec.events_json(obs::Domain::SimFabric)};
}

TEST(ObsTrace, SimDomainsBitIdenticalAcrossThreadCounts) {
  ObsGuard guard;
  const auto [sched1, fabric1] = sim_trace_at_threads(1);
  const auto [sched4, fabric4] = sim_trace_at_threads(4);
  EXPECT_FALSE(sched1.empty());
  EXPECT_FALSE(fabric1.empty());
  EXPECT_NE(sched1.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(fabric1.find("\"ph\":\"C\""), std::string::npos);
  // The search lanes interleave differently at 4 threads, but the
  // virtual-time domains serialize byte-for-byte identically.
  EXPECT_EQ(sched1, sched4);
  EXPECT_EQ(fabric1, fabric4);
}

TEST(ObsTrace, SearchDomainCarriesPhaseSpansAndLanes) {
  ObsGuard guard;
  BertConfig bc;
  bc.hidden = 128;
  bc.layers = 4;
  bc.seq_len = 32;
  bc.vocab = 256;
  const BuiltModel m = build_bert(bc);
  SearchRequest cfg;
  cfg.batch_size = 64;
  cfg.budget.threads = 4;

  obs::TraceRecorder rec;
  obs::set_recorder(&rec);
  const PartitionResult plan = auto_partition(m.graph, cfg).plan;
  obs::set_recorder(nullptr);
  ASSERT_TRUE(plan.feasible);

  int phases = 0;
  std::vector<int> lanes;
  for (const obs::TraceEvent& e : rec.snapshot()) {
    if (e.domain != obs::Domain::Search) continue;
    if (e.ph == 'X' && (e.name.rfind("phase", 0) == 0 ||
                        e.name.rfind("verify", 0) == 0))
      ++phases;
    if (e.ph == 'X' && e.cat == "sweep") lanes.push_back(e.tid);
  }
  EXPECT_GE(phases, 4);  // verify + phase1 + phase2 + prebuild/sweep
  // The per-(S, MB) stage-DP jobs must land on more than one thread lane.
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  EXPECT_GT(lanes.size(), 1u);
}

TEST(ObsTrace, ConcurrentRecordingIsSafe) {  // exercised under TSAN in CI
  ObsGuard guard;
  obs::TraceRecorder rec;
  obs::set_recorder(&rec);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([t] {
      obs::set_thread_name("obs-test-" + std::to_string(t));
      for (int k = 0; k < kSpansPerThread; ++k) {
        obs::Scope sc(
            [&] { return "span " + std::to_string(t * 1000 + k); }, "test");
        sc.arg("k", k);
      }
    });
  for (std::thread& th : ts) th.join();
  obs::set_recorder(nullptr);

  const std::vector<obs::TraceEvent> events = rec.snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // Canonical order: non-decreasing (domain, tid, ts).
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto a = std::make_tuple(static_cast<int>(events[i - 1].domain),
                                   events[i - 1].tid, events[i - 1].ts_us);
    const auto b = std::make_tuple(static_cast<int>(events[i].domain),
                                   events[i].tid, events[i].ts_us);
    EXPECT_LE(a, b) << "events out of canonical order at " << i;
  }
  EXPECT_TRUE(json_well_formed(rec.json()));
}

// ---- metrics --------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeSemantics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42);
  EXPECT_EQ(&reg.counter("c"), &c);  // stable reference, create-once
  obs::Gauge& g = reg.gauge("g");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.get(), 2.5);
  reg.reset();
  EXPECT_EQ(c.get(), 0);
  EXPECT_DOUBLE_EQ(g.get(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsAreCumulative) {
  obs::Histogram h;
  h.record(0.5);
  h.record(0.5);
  h.record(3.0);
  h.record(-1.0);  // underflow bucket
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 3.0);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  ASSERT_FALSE(s.buckets.empty());
  // Cumulative counts are non-decreasing; the final bound is +inf and its
  // count equals the total.
  for (std::size_t i = 1; i < s.buckets.size(); ++i) {
    EXPECT_LE(s.buckets[i - 1].first, s.buckets[i].first);
    EXPECT_LE(s.buckets[i - 1].second, s.buckets[i].second);
  }
  EXPECT_TRUE(std::isinf(s.buckets.back().first));
  EXPECT_EQ(s.buckets.back().second, s.count);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(ObsMetrics, RegistryJsonIsValidAndSorted) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("rate").set(0.75);
  reg.histogram("lat").record(1.0 / 0.0);  // non-finite goes to underflow
  reg.histogram("lat").record(0.25);
  const std::string doc = reg.to_json();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_LT(doc.find("a.count"), doc.find("b.count"));  // sorted by name
  EXPECT_NE(doc.find("\"inf\""), std::string::npos);    // +inf bound quoted
}

// ---- logger ---------------------------------------------------------------

TEST(ObsLog, LevelsGateAndSinkCaptures) {
  ObsGuard guard;
  // The sink type is a plain function pointer, so capture into a
  // function-local static instead of a lambda closure.
  struct Cap {
    static std::vector<std::pair<obs::LogLevel, std::string>>& log() {
      static std::vector<std::pair<obs::LogLevel, std::string>> v;
      return v;
    }
    static void sink(obs::LogLevel lvl, const std::string& msg) {
      log().emplace_back(lvl, msg);
    }
  };
  Cap::log().clear();
  obs::set_log_sink(&Cap::sink);

  obs::set_log_level(obs::LogLevel::Info);
  RANNC_LOG_DEBUG("hidden " << 1);
  RANNC_LOG_INFO("shown " << 2);
  RANNC_LOG_ERROR("err " << 3);
  ASSERT_EQ(Cap::log().size(), 2u);
  EXPECT_EQ(Cap::log()[0].first, obs::LogLevel::Info);
  EXPECT_EQ(Cap::log()[0].second, "shown 2");
  EXPECT_EQ(Cap::log()[1].second, "err 3");

  obs::set_log_level(obs::LogLevel::Off);
  RANNC_LOG_ERROR("also hidden");
  EXPECT_EQ(Cap::log().size(), 2u);
}

TEST(ObsLog, ParseLevelAcceptsAliases) {
  using obs::LogLevel;
  using obs::parse_log_level;
  EXPECT_EQ(parse_log_level("debug", LogLevel::Warn), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::Warn), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warning", LogLevel::Error), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error", LogLevel::Warn), LogLevel::Error);
  EXPECT_EQ(parse_log_level("none", LogLevel::Warn), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::Warn), LogLevel::Warn);
}

// ---- unified timeline renderer --------------------------------------------

TEST(ObsTimeline, AsciiRendererMatchesGantt) {
  const std::vector<StageTimes> st = {{1.0, 2.0, 0.0}, {1.5, 2.5, 0.0}};
  const ScheduleResult res = simulate_gpipe(st, 4);
  // render_gantt is now a thin wrapper over the shared TimelineSpan path;
  // rendering the spans directly must agree byte-for-byte.
  const std::string direct = obs::render_ascii_timeline(
      schedule_spans(res), 2, "stage ", res.iteration_time, 60);
  EXPECT_EQ(render_gantt(res, 2, 60), direct);
  EXPECT_NE(direct.find("stage 0 |"), std::string::npos);
  EXPECT_NE(direct.find('F'), std::string::npos);
  EXPECT_NE(direct.find('B'), std::string::npos);
}

TEST(ObsTimeline, EmptyAndDegenerateInputs) {
  EXPECT_EQ(obs::render_ascii_timeline({}, 2, "stage ", 1.0, 60), "");
  ScheduleResult empty;
  EXPECT_EQ(render_gantt(empty, 2, 60), "");
}

TEST(ObsTimeline, RecordSpansLandsInVirtualDomain) {
  ObsGuard guard;
  obs::TraceRecorder rec;
  std::vector<obs::TimelineSpan> spans(1);
  spans[0].track = 1;
  spans[0].name = "F mb 0";
  spans[0].start = 0.5;
  spans[0].end = 1.5;
  obs::record_spans(rec, obs::Domain::SimSchedule, "schedule", spans);
  const std::vector<obs::TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, obs::Domain::SimSchedule);
  EXPECT_EQ(events[0].tid, 1);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 0.5e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 1.0e6);
}

// ---- causal attribution (src/obs/critpath.h, src/obs/attribution.h) -------
// Fixtures small enough to verify by hand against the GPipe recurrences:
//   uniform2 (tf=tb=1, MB=4):    T = 10, each stage computes 8, bubbles 2
//   comm2 (tf=tb=1, c=0.5, MB=2): T = 7, 1 s of comm on the critical path
//   asym2 (s0 2x slower, MB=4):  T = 18, path compute s0=16 / s1=2

std::vector<StageTimes> uniform2() { return {{1, 1, 0}, {1, 1, 0}}; }
std::vector<StageTimes> comm2() { return {{1, 1, 0.5}, {1, 1, 0}}; }
std::vector<StageTimes> asym2() { return {{2, 2, 0}, {1, 1, 0}}; }

/// The canonical left-to-right fold the attribution layer fits bit-exactly.
double fold(const obs::StageBuckets& b) {
  return ((b.compute + b.comm) + b.queue) + b.bubble;
}

TEST(CritPath, UniformGpipeKnownPath) {
  const ScheduleResult res = simulate_gpipe(uniform2(), 4);
  const obs::CriticalPath path = critical_path(causal_ops(res), 2);
  EXPECT_DOUBLE_EQ(path.makespan, 10.0);
  EXPECT_EQ(path.terminal_stage, 0);
  // The path tiles [0, makespan] with no gaps.
  ASSERT_FALSE(path.segments.empty());
  EXPECT_DOUBLE_EQ(path.segments.front().start, 0.0);
  EXPECT_DOUBLE_EQ(path.segments.back().end, path.makespan);
  for (std::size_t i = 1; i < path.segments.size(); ++i)
    EXPECT_DOUBLE_EQ(path.segments[i].start, path.segments[i - 1].end);
  ASSERT_EQ(path.compute_by_stage.size(), 2u);
  EXPECT_DOUBLE_EQ(path.compute_by_stage[0], 5.0);
  EXPECT_DOUBLE_EQ(path.compute_by_stage[1], 5.0);
  EXPECT_DOUBLE_EQ(path.compute_total, 10.0);
  EXPECT_DOUBLE_EQ(path.comm_total, 0.0);
}

TEST(CritPath, AsymmetricStagesPath) {
  const ScheduleResult res = simulate_gpipe(asym2(), 4);
  const obs::CriticalPath path = critical_path(causal_ops(res), 2);
  EXPECT_DOUBLE_EQ(path.makespan, 18.0);
  EXPECT_EQ(path.terminal_stage, 0);
  ASSERT_EQ(path.compute_by_stage.size(), 2u);
  // The slow stage dominates: all 8 of its ops are on the path, but only
  // the handoff pair (f3 and b3) of the fast stage.
  EXPECT_DOUBLE_EQ(path.compute_by_stage[0], 16.0);
  EXPECT_DOUBLE_EQ(path.compute_by_stage[1], 2.0);
}

TEST(CritPath, CommEdgesOnPath) {
  const ScheduleResult res = simulate_gpipe(comm2(), 2);
  const obs::CriticalPath path = critical_path(causal_ops(res), 2);
  EXPECT_DOUBLE_EQ(path.makespan, 7.0);
  ASSERT_EQ(path.comm_by_edge.size(), 1u);
  // One forward and one backward boundary transfer bind: 2 * 0.5 s.
  EXPECT_DOUBLE_EQ(path.comm_by_edge[0], 1.0);
  EXPECT_DOUBLE_EQ(path.comm_total, 1.0);
  int comm_segments = 0;
  for (const obs::PathSegment& s : path.segments)
    if (s.kind == obs::PathSegment::Kind::Comm) ++comm_segments;
  EXPECT_EQ(comm_segments, 2);
}

TEST(Attribution, UniformGpipeMatchesTextbookBubble) {
  const obs::AttributionReport rep =
      obs::attribute(causal_ops(simulate_gpipe(uniform2(), 4)), 2, 4);
  EXPECT_DOUBLE_EQ(rep.step_time, 10.0);
  EXPECT_EQ(rep.anchor_stage, 0);
  EXPECT_DOUBLE_EQ(rep.step.compute, 8.0);
  EXPECT_DOUBLE_EQ(rep.step.comm, 0.0);
  EXPECT_DOUBLE_EQ(rep.step.queue, 0.0);
  EXPECT_DOUBLE_EQ(rep.step.bubble, 2.0);
  // (S-1)/(MB+S-1) = 1/5 for S=2, MB=4.
  EXPECT_DOUBLE_EQ(rep.step.bubble / rep.step.total, 0.2);
  EXPECT_DOUBLE_EQ(rep.step.bubble / rep.step.total,
                   simulate_gpipe(uniform2(), 4).bubble_fraction);
}

TEST(Attribution, CommFixtureBuckets) {
  const obs::AttributionReport rep =
      obs::attribute(causal_ops(simulate_gpipe(comm2(), 2)), 2, 2);
  EXPECT_DOUBLE_EQ(rep.step_time, 7.0);
  ASSERT_EQ(rep.stages.size(), 2u);
  for (const obs::StageBuckets& b : rep.stages) {
    EXPECT_DOUBLE_EQ(b.compute, 4.0);
    EXPECT_DOUBLE_EQ(b.comm, 0.5);
    EXPECT_DOUBLE_EQ(b.queue, 0.0);
    EXPECT_DOUBLE_EQ(b.bubble, 2.5);
  }
}

TEST(Attribution, ConservationBitExactAcrossSimulators) {
  // Awkward, non-representable times so the fit actually has to work.
  const std::vector<StageTimes> st = {
      {0.3, 0.7, 0.013}, {0.41, 0.29, 0.007}, {0.5, 0.23, 0}};
  for (const ScheduleResult& res :
       {simulate_gpipe(st, 7), simulate_1f1b_sync(st, 7)}) {
    const obs::AttributionReport rep = obs::attribute(causal_ops(res), 3, 7);
    EXPECT_DOUBLE_EQ(rep.step_time, res.iteration_time);
    for (const obs::StageBuckets& b : rep.stages) {
      // Bit-exact: == on doubles, not a tolerance.
      EXPECT_EQ(fold(b), rep.step_time);
      EXPECT_EQ(b.total, rep.step_time);
      EXPECT_GE(b.compute, 0.0);
      EXPECT_GE(b.comm, 0.0);
      EXPECT_GE(b.bubble, -1e-12);
    }
    EXPECT_EQ(fold(rep.step), rep.step_time);
  }
}

TEST(Attribution, SyntheticContentionFillsQueueBucket) {
  // Two ops on two stages; the consumer's measured edge delay (1.0) is
  // larger than the uncontended nominal (0.4): the excess is queuing.
  std::vector<obs::CausalOp> ops(2);
  ops[0].stage = 0;
  ops[0].end = 1.0;
  ops[1].stage = 1;
  ops[1].start = 2.0;
  ops[1].end = 3.0;
  ops[1].dep_stage = 0;
  ops[1].data_ready = 2.0;
  ops[1].comm_delay = 1.0;
  ops[1].comm_nominal = 0.4;
  const obs::AttributionReport rep = obs::attribute(ops, 2, 1);
  EXPECT_DOUBLE_EQ(rep.step_time, 3.0);
  const obs::StageBuckets& b = rep.stages[1];
  EXPECT_DOUBLE_EQ(b.comm, 0.4);
  EXPECT_DOUBLE_EQ(b.queue, 0.6);
  EXPECT_DOUBLE_EQ(b.bubble, 1.0);  // head idle [0, 1)
  EXPECT_EQ(fold(b), rep.step_time);
}

TEST(Attribution, StragglerRankingByCompute) {
  const obs::AttributionReport rep =
      obs::attribute(causal_ops(simulate_gpipe(asym2(), 4)), 2, 4);
  ASSERT_EQ(rep.stragglers.size(), 2u);
  EXPECT_EQ(rep.stragglers[0], 0);  // 16 s of compute vs 8 s
  EXPECT_EQ(rep.stragglers[1], 1);
}

/// Runs the estimator and the ground-truth re-simulation for one what-if.
obs::WhatIfResult eval_what_if(const obs::AttributionReport& rep,
                               const std::vector<StageTimes>& st, int mb,
                               const obs::WhatIf& w) {
  obs::WhatIfResult r;
  r.spec = w;
  r.name = obs::what_if_name(w);
  r.baseline = rep.step_time;
  r.estimate = obs::estimate_what_if(rep, w);
  std::vector<StageTimes> st2 = st;
  int mb2 = mb;
  apply_what_if(w, st2, mb2);
  r.ground_truth = simulate_gpipe(st2, mb2).iteration_time;
  return r;
}

TEST(Attribution, WhatIfWithinFivePercentOfGroundTruth) {
  using K = obs::WhatIf::Kind;
  const obs::AttributionReport asym =
      obs::attribute(causal_ops(simulate_gpipe(asym2(), 4)), 2, 4);
  const obs::AttributionReport comm =
      obs::attribute(causal_ops(simulate_gpipe(comm2(), 2)), 2, 2);
  const obs::AttributionReport unif =
      obs::attribute(causal_ops(simulate_gpipe(uniform2(), 4)), 2, 4);

  struct Case {
    const obs::AttributionReport* rep;
    std::vector<StageTimes> st;
    int mb;
    obs::WhatIf w;
    double expect_truth;
  };
  const std::vector<Case> cases = {
      {&asym, asym2(), 4, {K::StageComputeScale, 0, 0.75, 0}, 14.0},
      {&asym, asym2(), 4, {K::StageComputeScale, 0, 1.25, 0}, 22.0},
      {&asym, asym2(), 4, {K::StageComputeScale, 1, 0.5, 0}, 17.0},
      {&comm, comm2(), 2, {K::AllCommScale, -1, 0.5, 0}, 6.5},
      {&comm, comm2(), 2, {K::EdgeCommScale, 0, 2.0, 0}, 8.0},
      {&unif, uniform2(), 4, {K::Microbatches, -1, 1.0, 8}, 18.0},
      {&unif, uniform2(), 4, {K::Microbatches, -1, 1.0, 2}, 6.0},
  };
  ASSERT_GE(cases.size(), 6u);  // the acceptance bar: >= 6 perturbations
  for (const Case& c : cases) {
    const obs::WhatIfResult r = eval_what_if(*c.rep, c.st, c.mb, c.w);
    EXPECT_DOUBLE_EQ(r.ground_truth, c.expect_truth) << r.name;
    EXPECT_LE(std::abs(r.estimate - r.ground_truth),
              0.05 * r.ground_truth)
        << r.name << ": estimate " << r.estimate << " vs ground truth "
        << r.ground_truth;
  }
}

TEST(Attribution, DefaultCatalogHasAtLeastSixEntries) {
  const obs::AttributionReport rep =
      obs::attribute(causal_ops(simulate_gpipe(uniform2(), 4)), 2, 4);
  EXPECT_GE(obs::default_what_ifs(rep).size(), 6u);
}

TEST(Attribution, FabricContentionAttributedToNicQueue) {
  ClusterSpec spec;
  spec.num_nodes = 2;
  spec.devices_per_node = 2;
  comm::Fabric fabric(spec);
  fabric.set_transfer_log(true);
  // Two node-crossing transfers share nic-out:0 / nic-in:1: the fluid
  // fair share halves the NIC for both, so each flows for ~2x its
  // uncontended nominal and the excess lands in the queue bucket.
  const std::vector<comm::Fabric::Transfer> batch = {
      {0, 2, 8.0e6}, {1, 3, 8.0e6}};
  fabric.run_step(batch);

  obs::AttributionReport rep;
  comm::attribute_fabric(rep, fabric);
  ASSERT_FALSE(rep.links.empty());
  const obs::LinkAttribution* nic = nullptr;
  for (const obs::LinkAttribution& l : rep.links)
    if (l.name == "nic-out:0") nic = &l;
  ASSERT_NE(nic, nullptr);
  EXPECT_EQ(nic->transfers, 2);
  EXPECT_GT(nic->queue, 0.0);
  // Bit-exact per-link conservation: wire + queue == active.
  EXPECT_EQ(nic->wire + nic->queue, nic->active);
  ASSERT_FALSE(rep.bottleneck_links.empty());
  EXPECT_EQ(rep.links[static_cast<std::size_t>(rep.bottleneck_links[0])].name,
            "nic-out:0");
  EXPECT_GT(rep.fabric_horizon, 0.0);
}

TEST(Attribution, UncontendedTransferHasZeroQueue) {
  ClusterSpec spec;
  spec.num_nodes = 2;
  spec.devices_per_node = 2;
  comm::Fabric fabric(spec);
  fabric.set_transfer_log(true);
  fabric.p2p(0, 2, 8 << 20);
  obs::AttributionReport rep;
  comm::attribute_fabric(rep, fabric);
  ASSERT_FALSE(rep.links.empty());
  for (const obs::LinkAttribution& l : rep.links) {
    EXPECT_EQ(l.queue, 0.0) << l.name;
    EXPECT_EQ(l.wire + l.queue, l.active) << l.name;
  }
}

TEST(Attribution, ReportJsonDeterministicAndWellFormed) {
  // Same partition searched with different thread counts must produce a
  // byte-identical attribution report (the CI re-checks this across
  // RANNC_THREADS via rannc-explain; this is the in-process version).
  BertConfig bc;
  bc.hidden = 128;
  bc.layers = 2;
  bc.seq_len = 64;
  const TaskGraph g = build_bert(bc).graph;
  std::vector<std::string> docs;
  for (int threads : {1, 4}) {
    SearchRequest cfg;
    cfg.batch_size = 8;
    cfg.budget.threads = threads;
    const PartitionResult plan = auto_partition(g, cfg).plan;
    ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
    const int S = static_cast<int>(plan.stages.size());
    std::vector<StageTimes> st(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s) {
      const StagePlan& sp = plan.stages[static_cast<std::size_t>(s)];
      const double comm = s + 1 < S ? partitioner_comm_time(
                                          cfg.cluster, sp.comm_out_bytes)
                                    : 0.0;
      st[static_cast<std::size_t>(s)] = {sp.t_f, sp.t_b, comm};
    }
    obs::AttributionReport rep = obs::attribute(
        causal_ops(simulate_gpipe(st, plan.microbatches)), S,
        plan.microbatches);
    for (const obs::WhatIf& w : obs::default_what_ifs(rep))
      rep.what_ifs.push_back(
          eval_what_if(rep, st, plan.microbatches, w));
    docs.push_back(obs::report_json(rep));
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_TRUE(json_well_formed(docs[0]));
  // The table renderer runs on the same report without throwing.
  EXPECT_FALSE(obs::report_table(obs::attribute(
                   causal_ops(simulate_gpipe(uniform2(), 4)), 2, 4))
                   .empty());
}

TEST(ExactMath, FitResidualLandsBitExactly) {
  obs::ExactSum partial;
  for (int i = 0; i < 1000; ++i) partial.add(0.1);
  const double p = partial.value();
  const double total = 100.0;
  const double r = obs::fit_residual(total, p);
  EXPECT_EQ(p + r, total);  // bit-exact by construction
  EXPECT_EQ(obs::fit_residual(7.0, 7.0), 0.0);
  // Inputs whose scales make the fold unreachable must throw, not return
  // a silently wrong residual.
  EXPECT_THROW(obs::fit_residual(1.0, 1e300), std::logic_error);
}

TEST(ExactMath, ExactSumCompensates) {
  obs::ExactSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_EQ(s.value(), 2.0);  // naive summation yields 0
}

TEST(ObsMetrics, HistogramQuantiles) {
  obs::Histogram h;
  h.record(3.0);
  obs::Histogram::Snapshot one = h.snapshot();
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 3.0);  // single sample: clamped exact
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 3.0);

  obs::Histogram many;
  for (int i = 1; i <= 1000; ++i) many.record(static_cast<double>(i));
  obs::Histogram::Snapshot s = many.snapshot();
  const double p50 = s.quantile(0.50);
  const double p99 = s.quantile(0.99);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p50, s.max);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, s.max);
  // Exponential buckets: the estimates are within one bucket (2x) of truth.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 500.0);

  obs::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.snapshot().quantile(0.5), 0.0);
}

TEST(ObsMetrics, SnapshotJsonCarriesQuantiles) {
  obs::MetricsRegistry reg;
  reg.histogram("x").record(2.5);
  const std::string doc = reg.to_json();
  EXPECT_TRUE(json_well_formed(doc));
  EXPECT_NE(doc.find("\"p50\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace rannc
