// Tests for the deprecated auto_partition(PartitionConfig) shim: legacy
// callers must keep compiling (warned, not broken) and must see the exact
// PR 3 exhaustive engine — same plan AND same work counters — while the
// SearchRequest round-trip helpers preserve every legacy knob.
//
// The build compiles with -Werror=deprecated-declarations; this file is the
// one allowlisted caller of the legacy entry points, so every use is
// wrapped in a targeted diagnostic suppression.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "models/mlp.h"
#include "partition/auto_partitioner.h"
#include "partition/plan_io.h"
#include "partition/search.h"

namespace rannc {
namespace {

MlpConfig small_mlp() {
  MlpConfig c;
  c.input_dim = 64;
  c.hidden_dims = {128, 128, 128};
  c.num_classes = 16;
  return c;
}

PartitionConfig legacy_cfg() {
  PartitionConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 4;
  cfg.batch_size = 64;
  cfg.threads = 2;
  return cfg;
}

PartitionResult call_legacy(const TaskGraph& g, const PartitionConfig& cfg) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return auto_partition(g, cfg);
#pragma GCC diagnostic pop
}

TEST(DeprecatedShim, MatchesTheExhaustiveSearchRequestEngineExactly) {
  const BuiltModel m = build_mlp(small_mlp());
  const PartitionConfig cfg = legacy_cfg();
  const PartitionResult legacy = call_legacy(m.graph, cfg);
  ASSERT_TRUE(legacy.feasible) << legacy.infeasible_reason;

  const SearchRequest req = SearchRequest::from_config(cfg);
  EXPECT_FALSE(req.prune.enabled);  // the shim runs the PR 3 engine
  EXPECT_EQ(req.shard.shards, 1);
  const SearchResult sr = auto_partition(m.graph, req);
  ASSERT_TRUE(sr.feasible());

  // Same plan, bit for bit...
  EXPECT_EQ(plan_to_json(legacy), plan_to_json(sr.plan));
  // ...and the counters legacy consumers watch are untouched too.
  EXPECT_EQ(legacy.stats.dp_cells_visited, sr.stats().dp_cells_visited);
  EXPECT_EQ(legacy.stats.profile_queries, sr.stats().profile_queries);
  EXPECT_EQ(legacy.stats.candidates.size(), sr.stats().candidates.size());
  EXPECT_EQ(legacy.stats.prune.jobs_pruned, 0);
  EXPECT_EQ(legacy.stats.prune.incumbent_updates, 0);
}

TEST(DeprecatedShim, BeatenByTheDefaultPrunedEngineOnWorkNeverOnPlan) {
  const BuiltModel m = build_mlp(small_mlp());
  const PartitionConfig cfg = legacy_cfg();
  const PartitionResult legacy = call_legacy(m.graph, cfg);

  SearchRequest req = SearchRequest::from_config(cfg);
  req.prune.enabled = true;  // what new callers get by default
  const SearchResult pruned = auto_partition(m.graph, req);
  ASSERT_TRUE(pruned.feasible());
  EXPECT_EQ(plan_to_json(pruned.plan), plan_to_json(legacy));
  EXPECT_LE(pruned.stats().dp_cells_visited, legacy.stats.dp_cells_visited);
}

TEST(DeprecatedShim, KeepsTheLegacyValidationContract) {
  const BuiltModel m = build_mlp(small_mlp());
  PartitionConfig cfg = legacy_cfg();
  cfg.batch_size = -4;
  try {
    (void)call_legacy(m.graph, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Legacy callers parse this prefix; the shim must preserve it.
    EXPECT_EQ(std::string(e.what()).rfind("invalid PartitionConfig:", 0), 0u)
        << e.what();
  }
}

TEST(DeprecatedShim, ConfigRoundTripPreservesEveryLegacyKnob) {
  PartitionConfig cfg = legacy_cfg();
  cfg.precision = Precision::Mixed;
  cfg.optimizer = OptimizerKind::SGD;
  cfg.num_blocks = 12;
  cfg.memory_margin = 0.7;
  cfg.use_coarsening = false;
  cfg.max_dp_cells = 12345;
  cfg.profile_memo = false;

  const PartitionConfig back = SearchRequest::from_config(cfg).to_config();
  EXPECT_EQ(back.cluster.num_nodes, cfg.cluster.num_nodes);
  EXPECT_EQ(back.cluster.devices_per_node, cfg.cluster.devices_per_node);
  EXPECT_EQ(back.precision, cfg.precision);
  EXPECT_EQ(back.optimizer, cfg.optimizer);
  EXPECT_EQ(back.batch_size, cfg.batch_size);
  EXPECT_EQ(back.num_blocks, cfg.num_blocks);
  EXPECT_DOUBLE_EQ(back.memory_margin, cfg.memory_margin);
  EXPECT_EQ(back.use_coarsening, cfg.use_coarsening);
  EXPECT_EQ(back.max_dp_cells, cfg.max_dp_cells);
  EXPECT_EQ(back.threads, cfg.threads);
  EXPECT_EQ(back.profile_memo, cfg.profile_memo);
}

TEST(DeprecatedShim, LegacyValidatePlanOverloadForwards) {
  const BuiltModel m = build_mlp(small_mlp());
  const PartitionConfig cfg = legacy_cfg();
  const PartitionResult plan = call_legacy(m.graph, cfg);
  ASSERT_TRUE(plan.feasible);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto legacy_violations = validate_plan(plan, cfg);
#pragma GCC diagnostic pop
  const auto new_violations =
      validate_plan(plan, SearchRequest::from_config(cfg));
  EXPECT_EQ(legacy_violations.size(), new_violations.size());
  EXPECT_TRUE(new_violations.empty());
}

}  // namespace
}  // namespace rannc
