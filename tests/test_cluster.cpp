// Unit tests for the cluster topology and communication cost models.
#include <gtest/gtest.h>

#include "cluster/cluster_spec.h"

namespace rannc {
namespace {

TEST(ClusterSpec, PaperTestbedDefaults) {
  ClusterSpec c;
  EXPECT_EQ(c.total_devices(), 32);  // 4 nodes x 8 V100
  EXPECT_EQ(c.device.memory_bytes, 32LL << 30);
  EXPECT_GT(c.intra_bw, c.inter_bw);  // NVLink beats InfiniBand
}

TEST(ClusterSpec, SingleNodeSlice) {
  ClusterSpec c;
  ClusterSpec one = c.single_node();
  EXPECT_EQ(one.total_devices(), 8);
  EXPECT_EQ(one.devices_per_node, c.devices_per_node);
}

TEST(CommModel, P2pLatencyPlusBandwidth) {
  ClusterSpec c;
  const double t = p2p_time(c, 25'000'000'000LL, true);
  EXPECT_NEAR(t, c.intra_lat + 1.0, 1e-9);  // 25 GB over 25 GB/s
  EXPECT_GT(p2p_time(c, 1 << 20, false), p2p_time(c, 1 << 20, true));
}

TEST(CommModel, AllreduceZeroForTrivialCases) {
  ClusterSpec c;
  EXPECT_DOUBLE_EQ(allreduce_time(c, 1 << 20, 1, false), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_time(c, 0, 8, false), 0.0);
}

TEST(CommModel, AllreduceScalesWithRanksFactor) {
  ClusterSpec c;
  const std::int64_t bytes = 100 << 20;
  const double t2 = allreduce_time(c, bytes, 2, false);
  const double t8 = allreduce_time(c, bytes, 8, false);
  // Ring term 2(r-1)/r: grows from 1x to 1.75x of bytes/bw.
  EXPECT_GT(t8, t2);
  EXPECT_LT(t8, 2.0 * t2);
}

TEST(CommModel, InterNodeAllreduceSlower) {
  ClusterSpec c;
  const std::int64_t bytes = 100 << 20;
  EXPECT_GT(allreduce_time(c, bytes, 8, true), allreduce_time(c, bytes, 8, false));
}

TEST(CommModel, PartitionerEstimateUsesIntraNodeBandwidth) {
  // Paper footnote 3: the partitioner estimates with intra-node bandwidth.
  ClusterSpec c;
  EXPECT_DOUBLE_EQ(partitioner_comm_time(c, 1 << 20),
                   p2p_time(c, 1 << 20, true));
}

}  // namespace
}  // namespace rannc
