// Tests for the serve subsystem: canonical fingerprints, the ProfileMemo
// JSON round-trip, the durable plan store, and PlanServer (single-flight,
// shedding, bit-identity of served plans).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "rannc.h"

namespace {

using namespace rannc;
using serve::Fingerprint;
using serve::ModelSpec;
using serve::PlanKey;
using serve::PlanServer;
using serve::PlanStore;
using serve::ServeOptions;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::StoredEntry;

// ---- helpers ---------------------------------------------------------------

/// Small search: MLP on 1 node x 2 devices solves in milliseconds.
SearchRequest small_cfg(std::int64_t batch = 16) {
  SearchRequest req;
  req.cluster.num_nodes = 1;
  req.cluster.devices_per_node = 2;
  req.batch_size = batch;
  return req;
}

ModelSpec mlp_spec() {
  ModelSpec s;
  s.model = "mlp";
  return s;
}

ServeRequest mlp_request(std::int64_t batch = 16) {
  ServeRequest r;
  r.model = mlp_spec();
  r.search = small_cfg(batch);
  return r;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path p =
      std::filesystem::temp_directory_path() / ("rannc_serve_test_" + name);
  std::filesystem::remove_all(p);
  return p;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::filesystem::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << text;
}

template <typename F>
bool eventually(F&& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Two independent elementwise branches joined by an Add — small enough to
/// mutate precisely, rich enough to exercise ordering and topology.
TaskGraph two_branch(bool swap_task_insertion = false,
                     const std::string& tag = "") {
  TaskGraph g("m" + tag);
  const ValueId a = g.add_input("a" + tag, Shape{4, 8});
  const ValueId b = g.add_input("b" + tag, Shape{4, 8});
  ValueId ra = -1, rb = -1;
  if (swap_task_insertion) {
    rb = g.add_task("t" + tag, OpKind::Tanh, {b}, Shape{4, 8});
    ra = g.add_task("r" + tag, OpKind::Relu, {a}, Shape{4, 8});
  } else {
    ra = g.add_task("r" + tag, OpKind::Relu, {a}, Shape{4, 8});
    rb = g.add_task("t" + tag, OpKind::Tanh, {b}, Shape{4, 8});
  }
  const ValueId s = g.add_task("s" + tag, OpKind::Add, {ra, rb}, Shape{4, 8});
  g.mark_output(s);
  return g;
}

// ---- json parser -----------------------------------------------------------

TEST(ServeJson, ParsesDocumentsAndPreservesInt64) {
  const json::Value v = json::parse(
      R"({"a": 9007199254740993, "b": -2.5e3, "s": "x\ny", "l": [1, true, null]})");
  EXPECT_EQ(v.geti("a"), 9007199254740993LL);  // exact beyond double
  EXPECT_DOUBLE_EQ(v.getd("b"), -2500.0);
  EXPECT_EQ(v.gets("s"), "x\ny");
  ASSERT_TRUE(v.find("l")->is_array());
  EXPECT_EQ(v.find("l")->items.size(), 3u);
  EXPECT_TRUE(v.find("l")->items[1].boolean);
  EXPECT_TRUE(v.find("l")->items[2].is_null());
}

TEST(ServeJson, RejectsGarbage) {
  EXPECT_THROW(json::parse("{"), std::invalid_argument);
  EXPECT_THROW(json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(json::parse("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW(json::parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(json::parse(std::string(70, '[')), std::invalid_argument);
  // Present-but-mistyped fields are diagnosed, absent ones default.
  const json::Value v = json::parse(R"({"a": "str"})");
  EXPECT_THROW((void)v.geti("a"), std::invalid_argument);
  EXPECT_EQ(v.geti("missing", 7), 7);
}

TEST(ServeJson, CompactStripsWhitespaceOutsideStrings) {
  EXPECT_EQ(json::compact("{ \"a b\" : [ 1 ,\n 2 ] }"), "{\"a b\":[1,2]}");
}

// ---- fingerprint -----------------------------------------------------------

TEST(Fingerprint, RebuiltGraphIsStable) {
  const Fingerprint f1 = serve::fingerprint_graph(build_mlp({}).graph);
  const Fingerprint f2 = serve::fingerprint_graph(build_mlp({}).graph);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1.hex().size(), 32u);
  EXPECT_EQ(serve::parse_fingerprint(f1.hex()), f1);
}

TEST(Fingerprint, ParseRejectsBadInput) {
  EXPECT_THROW(serve::parse_fingerprint("abc"), std::invalid_argument);
  EXPECT_THROW(serve::parse_fingerprint(std::string(32, 'g')),
               std::invalid_argument);
}

TEST(Fingerprint, NamesDoNotMatter) {
  EXPECT_EQ(serve::fingerprint_graph(two_branch(false, "")),
            serve::fingerprint_graph(two_branch(false, "_renamed")));
}

TEST(Fingerprint, InsertionOrderOfIndependentTasksDoesNotMatter) {
  EXPECT_EQ(serve::fingerprint_graph(two_branch(false)),
            serve::fingerprint_graph(two_branch(true)));
}

TEST(Fingerprint, RecordedIntermediateMetadataCannotSkew) {
  // The exact skew the ShapeMismatch/DTypeMismatch diagnostics catch:
  // builder-recorded intermediate metadata diverging from re-inference.
  // The fingerprint must be computed from re-inference, so it is immune.
  const Fingerprint clean = serve::fingerprint_graph(two_branch());
  TaskGraph g1 = two_branch();
  g1.value_mut(g1.task(0).output).shape = Shape{3, 5, 7};
  EXPECT_EQ(serve::fingerprint_graph(g1), clean);
  TaskGraph g2 = two_branch();
  g2.value_mut(g2.task(0).output).dtype = DType::I64;
  EXPECT_EQ(serve::fingerprint_graph(g2), clean);
}

TEST(Fingerprint, SemanticMutationsChangeIt) {
  const Fingerprint clean = serve::fingerprint_graph(two_branch());

  {  // op kind
    TaskGraph g = two_branch();
    g.task_mut(0).kind = OpKind::Gelu;
    EXPECT_NE(serve::fingerprint_graph(g), clean);
  }
  {  // input shape
    TaskGraph g = two_branch();
    g.value_mut(g.input_values()[0]).shape = Shape{4, 16};
    EXPECT_NE(serve::fingerprint_graph(g), clean);
  }
  {  // input dtype
    TaskGraph g = two_branch();
    g.value_mut(g.input_values()[0]).dtype = DType::F16;
    EXPECT_NE(serve::fingerprint_graph(g), clean);
  }
  {  // attributes
    TaskGraph g = two_branch();
    g.task_mut(0).attrs.set("axis", std::int64_t{1});
    EXPECT_NE(serve::fingerprint_graph(g), clean);
    TaskGraph h = two_branch();
    h.task_mut(0).attrs.set("p", 0.5);
    EXPECT_NE(serve::fingerprint_graph(h), clean);
  }
  {  // edge rewire (back-edges kept consistent): Relu reads input b
    TaskGraph g = two_branch();
    const ValueId a = g.input_values()[0];
    const ValueId b = g.input_values()[1];
    g.task_mut(0).inputs[0] = b;
    g.value_mut(a).consumers.clear();
    g.value_mut(b).consumers.push_back(0);
    EXPECT_NE(serve::fingerprint_graph(g), clean);
  }
  {  // output marking
    TaskGraph g = two_branch();
    g.value_mut(g.task(0).output).is_output = true;
    EXPECT_NE(serve::fingerprint_graph(g), clean);
  }
}

TEST(Fingerprint, DistinctModelsDiffer) {
  const Fingerprint mlp = serve::fingerprint_graph(build_mlp({}).graph);
  MlpConfig narrow;
  narrow.input_dim = 32;
  EXPECT_NE(serve::fingerprint_graph(build_mlp(narrow).graph), mlp);
  BertConfig tiny;
  tiny.layers = 2;
  tiny.hidden = 64;
  tiny.heads = 2;
  tiny.seq_len = 32;
  tiny.vocab = 256;
  EXPECT_NE(serve::fingerprint_graph(build_bert(tiny).graph), mlp);
}

TEST(Fingerprint, MalformedGraphThrows) {
  TaskGraph g = two_branch();
  g.task_mut(1).id = 0;
  EXPECT_THROW(serve::fingerprint_graph(g), std::invalid_argument);
}

// ---- ProfileMemo JSON round-trip -------------------------------------------

TEST(MemoJson, ExactRoundTripAndWarmSearch) {
  const BuiltModel m = serve::build_model(mlp_spec());
  SearchRequest cfg = small_cfg();
  auto memo1 = std::make_shared<ProfileMemo>();
  cfg.shared_memo = memo1;
  const PartitionResult r1 = auto_partition(m.graph, cfg).plan;
  ASSERT_TRUE(r1.feasible);
  ASSERT_GT(memo1->size(), 0u);

  const std::string snap = memo1->to_json();
  auto memo2 = std::make_shared<ProfileMemo>();
  memo2->from_json(snap);
  EXPECT_EQ(memo2->size(), memo1->size());
  EXPECT_EQ(memo2->to_json(), snap);  // byte-exact round trip

  SearchRequest cfg2 = small_cfg();
  cfg2.shared_memo = memo2;
  const PartitionResult r2 = auto_partition(m.graph, cfg2).plan;
  EXPECT_EQ(r2.stats.memo_misses, 0);  // every profile restored
  EXPECT_GT(r2.stats.memo_hits, 0);
  EXPECT_EQ(plan_to_json(r2), plan_to_json(r1));
}

TEST(MemoJson, SerializationIsEntryOrderIndependent) {
  const char* kEntryA =
      "{\"lo\": 0, \"hi\": 2, \"bsize\": 8, \"inflight\": 1, "
      "\"ckpt\": false, \"t_f\": 0.25, \"t_b\": 0.5, \"mem\": 100}";
  const char* kEntryB =
      "{\"lo\": 2, \"hi\": 4, \"bsize\": 8, \"inflight\": 2, "
      "\"ckpt\": true, \"t_f\": 0.125, \"t_b\": 0.25, \"mem\": 200}";
  ProfileMemo ab, ba;
  ab.from_json(std::string("{\"version\": 1, \"entries\": [") + kEntryA +
               ", " + kEntryB + "]}");
  ba.from_json(std::string("{\"version\": 1, \"entries\": [") + kEntryB +
               ", " + kEntryA + "]}");
  EXPECT_EQ(ab.size(), 2u);
  EXPECT_EQ(ab.to_json(), ba.to_json());
}

TEST(MemoJson, RejectsTruncatedAndCorruptSnapshots) {
  const BuiltModel m = serve::build_model(mlp_spec());
  SearchRequest cfg = small_cfg();
  auto memo = std::make_shared<ProfileMemo>();
  cfg.shared_memo = memo;
  (void)auto_partition(m.graph, cfg);
  const std::string snap = memo->to_json();

  ProfileMemo fresh;
  EXPECT_THROW(fresh.from_json(snap.substr(0, snap.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW(fresh.from_json("not json at all"), std::invalid_argument);
  EXPECT_THROW(fresh.from_json("{\"version\": 99, \"entries\": []}"),
               std::invalid_argument);
  EXPECT_THROW(fresh.from_json("{\"entries\": []}"), std::invalid_argument);
  EXPECT_THROW(
      fresh.from_json("{\"version\": 1, \"entries\": [{\"lo\": 0}]}"),
      std::invalid_argument);
  EXPECT_EQ(fresh.size(), 0u);  // failed loads leave nothing behind
}

// ---- plan store ------------------------------------------------------------

class PlanStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fp_ = serve::fingerprint_graph(build_mlp({}).graph);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoredEntry entry() const {
    StoredEntry e;
    e.plan_json = "{\"version\": 1, \"fake\": \"plan\"}";
    e.memo_json = "{\"version\": 1, \"entries\": []}";
    return e;
  }

  std::filesystem::path dir_;
  Fingerprint fp_;
};

TEST_F(PlanStoreTest, SaveLoadRoundTrip) {
  PlanStore store(dir_);
  const PlanKey key = serve::make_plan_key(fp_, small_cfg());
  EXPECT_FALSE(store.load(key).has_value());
  ASSERT_TRUE(store.save(key, entry()));
  const auto got = store.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->plan_json, entry().plan_json);
  EXPECT_EQ(got->memo_json, entry().memo_json);
  EXPECT_FALSE(got->infeasible);
  // Atomic write protocol leaves no temp droppings.
  for (const auto& de : std::filesystem::directory_iterator(dir_))
    EXPECT_EQ(de.path().extension(), ".json") << de.path();
}

TEST_F(PlanStoreTest, InfeasibleEntriesRoundTrip) {
  PlanStore store(dir_);
  const PlanKey key = serve::make_plan_key(fp_, small_cfg());
  StoredEntry e;
  e.infeasible = true;
  e.infeasible_reason = "does not fit";
  ASSERT_TRUE(store.save(key, e));
  const auto got = store.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->infeasible);
  EXPECT_EQ(got->infeasible_reason, "does not fit");
}

TEST_F(PlanStoreTest, CorruptionIsAMissNeverACrash) {
  PlanStore store(dir_);
  const PlanKey key = serve::make_plan_key(fp_, small_cfg());
  ASSERT_TRUE(store.save(key, entry()));
  const std::filesystem::path file = dir_ / key.filename();
  const std::string original = slurp(file);

  // Payload tampering: breaks the checksum.
  std::string tampered = original;
  const auto pos = tampered.find("fake");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] = 'F';
  spit(file, tampered);
  EXPECT_FALSE(store.load(key).has_value());

  // Truncation: breaks the JSON.
  spit(file, original.substr(0, original.size() / 2));
  EXPECT_FALSE(store.load(key).has_value());

  // Not JSON at all.
  spit(file, "\x7f garbage \x01");
  EXPECT_FALSE(store.load(key).has_value());

  // Restored byte-exactly: loads again.
  spit(file, original);
  EXPECT_TRUE(store.load(key).has_value());
}

TEST_F(PlanStoreTest, FutureFormatVersionIsRejected) {
  PlanStore store(dir_);
  const PlanKey key = serve::make_plan_key(fp_, small_cfg());
  ASSERT_TRUE(store.save(key, entry()));
  const std::filesystem::path file = dir_ / key.filename();
  std::string text = slurp(file);
  const std::string want = "\"format_version\": 1";
  const auto pos = text.find(want);
  ASSERT_NE(pos, std::string::npos);
  // The checksum covers only the payload, so this isolates the version
  // gate from the checksum gate.
  text.replace(pos, want.size(), "\"format_version\": 2");
  spit(file, text);
  EXPECT_FALSE(store.load(key).has_value());
}

TEST_F(PlanStoreTest, FilenameCollisionGuardedByEchoedKey) {
  PlanStore store(dir_);
  const PlanKey key_a = serve::make_plan_key(fp_, small_cfg(16));
  const PlanKey key_b = serve::make_plan_key(fp_, small_cfg(32));
  ASSERT_TRUE(store.save(key_a, entry()));
  // Simulate a filename-hash collision: key A's entry sitting at key B's
  // path. The echoed geom_sig must reject it.
  std::filesystem::rename(dir_ / key_a.filename(), dir_ / key_b.filename());
  EXPECT_FALSE(store.load(key_b).has_value());
}

TEST_F(PlanStoreTest, SiblingMemoFoundAcrossGeometries) {
  PlanStore store(dir_);
  const PlanKey key_a = serve::make_plan_key(fp_, small_cfg(16));
  const PlanKey key_b = serve::make_plan_key(fp_, small_cfg(32));
  ASSERT_NE(key_a.filename(), key_b.filename());
  ASSERT_TRUE(store.save(key_a, entry()));
  const auto memo = store.load_sibling_memo(key_b);
  ASSERT_TRUE(memo.has_value());
  EXPECT_EQ(*memo, entry().memo_json);

  // A different cost model is not a sibling.
  SearchRequest other = small_cfg(32);
  other.precision = Precision::Mixed;
  EXPECT_FALSE(
      store.load_sibling_memo(serve::make_plan_key(fp_, other)).has_value());
}

// ---- PlanServer ------------------------------------------------------------

TEST(PlanServerTest, MissThenHitAndPlanIsBitIdenticalToDirect) {
  PlanServer server(ServeOptions{});
  const ServeRequest req = mlp_request();

  const ServeResponse r1 = server.handle(req);
  ASSERT_EQ(r1.status, ServeResponse::Status::Miss) << r1.error;
  ASSERT_FALSE(r1.plan_json.empty());
  EXPECT_EQ(r1.fingerprint,
            serve::fingerprint_graph(build_mlp({}).graph).hex());

  const ServeResponse r2 = server.handle(req);
  EXPECT_EQ(r2.status, ServeResponse::Status::Hit);
  EXPECT_EQ(r2.plan_json, r1.plan_json);
  EXPECT_EQ(r2.key, r1.key);

  // Bit-identity against direct auto_partition at several thread counts.
  const BuiltModel m = serve::build_model(mlp_spec());
  for (int threads : {1, 2, 8}) {
    SearchRequest cfg = small_cfg();
    cfg.budget.threads = threads;
    EXPECT_EQ(plan_to_json(auto_partition(m.graph, cfg).plan), r1.plan_json)
        << "threads=" << threads;
  }

  const PlanServer::Stats s = server.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.searches, 1);
  EXPECT_EQ(s.errors, 0);
}

TEST(PlanServerTest, StatsJsonCarriesLatencyQuantiles) {
  PlanServer server(ServeOptions{});
  const ServeRequest req = mlp_request();
  ASSERT_EQ(server.handle(req).status, ServeResponse::Status::Miss);
  ASSERT_EQ(server.handle(req).status, ServeResponse::Status::Hit);

  // --metrics consumers read p50/p99 from the serve.* latency histograms;
  // the stats snapshot republishes them so `stats` over the wire carries
  // the same numbers.
  const json::Value v = json::parse(server.stats_json());
  const json::Value* hit = v.find("hit_latency_us");
  const json::Value* miss = v.find("miss_latency_us");
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(miss, nullptr);
  EXPECT_GT(hit->getd("p50"), 0.0);
  EXPECT_GE(hit->getd("p99"), hit->getd("p50"));
  EXPECT_GT(miss->getd("p50"), 0.0);
  EXPECT_GE(miss->getd("p99"), miss->getd("p50"));
}

TEST(PlanServerTest, DiskWarmRestartHitsWithIdenticalPlan) {
  const auto dir = fresh_dir("restart");
  std::string first_plan;
  {
    ServeOptions o;
    o.store_dir = dir.string();
    PlanServer server(o);
    const ServeResponse r = server.handle(mlp_request());
    ASSERT_EQ(r.status, ServeResponse::Status::Miss) << r.error;
    first_plan = r.plan_json;
  }
  {
    ServeOptions o;
    o.store_dir = dir.string();
    PlanServer server(o);
    const ServeResponse r = server.handle(mlp_request());
    EXPECT_EQ(r.status, ServeResponse::Status::Hit);
    EXPECT_TRUE(r.from_disk);
    EXPECT_EQ(r.plan_json, first_plan);
    EXPECT_EQ(server.stats().disk_hits, 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(PlanServerTest, FingerprintKeyedHitAcrossSpecSpellings) {
  // Two different request spellings that build the same graph (the mlp
  // builder's default batch is 1): the plan cache is keyed by fingerprint,
  // not by request text, so the second is a hit.
  PlanServer server(ServeOptions{});
  ServeRequest a = mlp_request();
  ServeRequest b = mlp_request();
  b.model.batch = 1;
  ASSERT_NE(serve::canonical_sig(a.model), serve::canonical_sig(b.model));

  const ServeResponse ra = server.handle(a);
  ASSERT_EQ(ra.status, ServeResponse::Status::Miss) << ra.error;
  const ServeResponse rb = server.handle(b);
  EXPECT_EQ(rb.status, ServeResponse::Status::Hit);
  EXPECT_EQ(rb.fingerprint, ra.fingerprint);
  EXPECT_EQ(rb.plan_json, ra.plan_json);
}

TEST(PlanServerTest, InfeasibleResultsAreCachedToo) {
  PlanServer server(ServeOptions{});
  ServeRequest req = mlp_request();
  req.search.cluster.num_nodes = 1;
  req.search.cluster.devices_per_node = 1;
  // Small but positive: usable_memory() of 0 would disable the memory
  // check entirely, while ~1 KiB cannot hold even one MLP layer.
  req.search.cluster.device.memory_bytes = 1024;
  const ServeResponse r1 = server.handle(req);
  ASSERT_EQ(r1.status, ServeResponse::Status::Miss) << r1.error;
  EXPECT_TRUE(r1.infeasible);
  EXPECT_FALSE(r1.infeasible_reason.empty());
  const ServeResponse r2 = server.handle(req);
  EXPECT_EQ(r2.status, ServeResponse::Status::Hit);
  EXPECT_TRUE(r2.infeasible);
  EXPECT_EQ(server.stats().searches, 1);
}

TEST(PlanServerTest, UnknownModelIsAnErrorReplyNotACrash) {
  PlanServer server(ServeOptions{});
  ServeRequest req = mlp_request();
  req.model.model = "alexnet";
  const ServeResponse r = server.handle(req);
  EXPECT_EQ(r.status, ServeResponse::Status::Error);
  EXPECT_NE(r.error.find("alexnet"), std::string::npos);
  EXPECT_EQ(server.stats().errors, 1);
  // Errors are not cached: the server stays healthy for good requests.
  EXPECT_EQ(server.handle(mlp_request()).status,
            ServeResponse::Status::Miss);
}

TEST(PlanServerTest, ConcurrentDuplicatesCoalesceOntoOneSearch) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ServeOptions o;
  o.search_fn = [gate](const TaskGraph& g, const SearchRequest& req) {
    gate.wait();  // hold the leader's search open
    return auto_partition(g, req);
  };
  PlanServer server(o);

  ServeResponse leader_resp, follower_resp;
  std::thread leader(
      [&] { leader_resp = server.handle(mlp_request()); });
  // The leader has registered in-flight by the time its search starts.
  ASSERT_TRUE(eventually([&] { return server.stats().searches == 1; }));
  std::thread follower(
      [&] { follower_resp = server.handle(mlp_request()); });
  ASSERT_TRUE(eventually([&] { return server.stats().coalesced == 1; }));
  release.set_value();
  leader.join();
  follower.join();

  ASSERT_EQ(leader_resp.status, ServeResponse::Status::Miss)
      << leader_resp.error;
  ASSERT_EQ(follower_resp.status, ServeResponse::Status::Miss)
      << follower_resp.error;
  EXPECT_FALSE(leader_resp.coalesced);
  EXPECT_TRUE(follower_resp.coalesced);
  EXPECT_FALSE(leader_resp.plan_json.empty());
  EXPECT_EQ(follower_resp.plan_json, leader_resp.plan_json);

  const PlanServer::Stats s = server.stats();
  EXPECT_EQ(s.searches, 1);  // single flight
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.coalesced, 1);
}

TEST(PlanServerTest, MissesBeyondTheQueueBoundAreShed) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ServeOptions o;
  o.max_queue = 1;
  o.search_fn = [gate](const TaskGraph& g, const SearchRequest& req) {
    gate.wait();
    return auto_partition(g, req);
  };
  PlanServer server(o);

  ServeResponse leader_resp;
  std::thread leader(
      [&] { leader_resp = server.handle(mlp_request(16)); });
  ASSERT_TRUE(eventually([&] { return server.stats().searches == 1; }));

  // A *different* key cannot coalesce; with the queue full it is shed
  // immediately instead of piling up behind the running search.
  const ServeResponse shed = server.handle(mlp_request(32));
  EXPECT_EQ(shed.status, ServeResponse::Status::Overloaded);
  EXPECT_TRUE(shed.plan_json.empty());

  release.set_value();
  leader.join();
  ASSERT_EQ(leader_resp.status, ServeResponse::Status::Miss)
      << leader_resp.error;
  EXPECT_EQ(server.stats().shed, 1);

  // Load gone: the same request now searches normally.
  EXPECT_EQ(server.handle(mlp_request(32)).status,
            ServeResponse::Status::Miss);
}

// ---- wire protocol ---------------------------------------------------------

TEST(ServeWire, RequestReplyRoundTrip) {
  PlanServer server(ServeOptions{});
  const std::string line =
      R"({"id": 7, "model": "mlp", "nodes": 1, "devices_per_node": 2, "batch_size": 16})";

  const auto r1 = server.serve_line(line);
  EXPECT_FALSE(r1.shutdown);
  const json::Value v1 = json::parse(r1.reply);
  EXPECT_EQ(v1.geti("id"), 7);
  EXPECT_EQ(v1.gets("status"), "miss");
  ASSERT_NE(v1.find("plan"), nullptr);
  EXPECT_TRUE(v1.find("plan")->is_object());
  EXPECT_EQ(v1.gets("fingerprint").size(), 32u);

  const auto r2 = server.serve_line(line);
  const json::Value v2 = json::parse(r2.reply);
  EXPECT_EQ(v2.gets("status"), "hit");

  const auto stats = server.serve_line(R"({"id": 8, "cmd": "stats"})");
  const json::Value vs = json::parse(stats.reply);
  EXPECT_EQ(vs.find("stats")->geti("hits"), 1);
  EXPECT_EQ(vs.find("stats")->geti("misses"), 1);

  const auto fp =
      server.serve_line(R"({"id": 9, "cmd": "fingerprint", "model": "mlp"})");
  EXPECT_EQ(json::parse(fp.reply).gets("fingerprint"),
            serve::fingerprint_graph(build_mlp({}).graph).hex());

  const auto bad = server.serve_line("this is not json");
  EXPECT_FALSE(bad.shutdown);
  EXPECT_EQ(json::parse(bad.reply).gets("status"), "error");

  const auto bye = server.serve_line(R"({"id": 10, "cmd": "shutdown"})");
  EXPECT_TRUE(bye.shutdown);
  EXPECT_EQ(json::parse(bye.reply).gets("status"), "ok");
}

}  // namespace
