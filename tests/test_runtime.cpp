// Tests for the execution runtime: optimizers, the reference trainer, and
// the multi-threaded pipeline trainer's numerical equivalence with
// single-device training (the paper's loss-parity validation, Section IV-B).
#include <gtest/gtest.h>

#include <cmath>

#include "models/mlp.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/trainer.h"

namespace rannc {
namespace {

/// Deterministic synthetic classification microbatches for an MLP.
std::vector<TensorMap> make_microbatches(const TaskGraph& g, int count,
                                         std::uint64_t seed) {
  const ValueId x = g.input_values()[0];
  const ValueId y = g.input_values()[1];
  const Shape& xs = g.value(x).shape;
  const std::int64_t b = xs.dims[0];
  std::vector<TensorMap> mbs;
  for (int j = 0; j < count; ++j) {
    TensorMap m;
    m.emplace(x, Tensor::uniform(xs, 1.0f, seed + static_cast<std::uint64_t>(j)));
    Tensor labels(Shape{b});
    for (std::int64_t i = 0; i < b; ++i)
      labels.at(i) = static_cast<float>((i + j) % 10);
    m.emplace(y, std::move(labels));
    mbs.push_back(std::move(m));
  }
  return mbs;
}

MlpConfig test_mlp() {
  MlpConfig c;
  c.input_dim = 12;
  c.hidden_dims = {16, 16, 16};
  c.num_classes = 10;
  c.batch = 4;
  return c;
}

/// Splits tasks into `S` contiguous chunks (valid stages for a chain MLP).
std::vector<std::vector<TaskId>> chunk_stages(const TaskGraph& g, int S) {
  std::vector<std::vector<TaskId>> stages(static_cast<std::size_t>(S));
  const auto n = static_cast<int>(g.num_tasks());
  for (int t = 0; t < n; ++t)
    stages[static_cast<std::size_t>(std::min(S - 1, t * S / n))].push_back(t);
  return stages;
}

TEST(Optimizer, SgdStepMovesAgainstGradient) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::SGD;
  cfg.lr = 0.5f;
  Optimizer opt(cfg);
  TensorMap params, grads;
  params.emplace(0, Tensor(Shape{2}, {1.0f, 2.0f}));
  grads.emplace(0, Tensor(Shape{2}, {1.0f, -1.0f}));
  opt.step(params, grads);
  EXPECT_FLOAT_EQ(params.at(0).at(0), 0.5f);
  EXPECT_FLOAT_EQ(params.at(0).at(1), 2.5f);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::Adam;
  cfg.lr = 0.1f;
  Optimizer opt(cfg);
  TensorMap params, grads;
  params.emplace(0, Tensor(Shape{1}, {1.0f}));
  grads.emplace(0, Tensor(Shape{1}, {3.0f}));
  opt.step(params, grads);
  // Bias-corrected Adam's first update is ~lr regardless of grad magnitude.
  EXPECT_NEAR(params.at(0).at(0), 1.0f - 0.1f, 1e-5);
}

TEST(InitParams, DeterministicAndPyTorchLike) {
  MlpConfig mc = test_mlp();
  BuiltModel m = build_mlp(mc);
  TensorMap p1 = init_params(m.graph, 7);
  TensorMap p2 = init_params(m.graph, 7);
  for (const auto& [v, t] : p1)
    EXPECT_FLOAT_EQ(max_abs_diff(t, p2.at(v)), 0.0f);
  // Biases start at zero.
  for (const Value& v : m.graph.values())
    if (v.kind == ValueKind::Param && v.name.ends_with(".bias"))
      EXPECT_FLOAT_EQ(p1.at(v.id).max_abs(), 0.0f);
}

TEST(Trainer, LossDecreasesOnFixedBatch) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  Trainer trainer(m.graph, oc, /*seed=*/3);
  const auto mbs = make_microbatches(m.graph, 2, 99);
  const float first = trainer.step(mbs);
  float last = first;
  for (int i = 0; i < 30; ++i) last = trainer.step(mbs);
  EXPECT_LT(last, first * 0.7f) << "training did not reduce the loss";
}

TEST(Trainer, RequiresScalarLossOutput) {
  TaskGraph g("two_out");
  ValueId x = g.add_input("x", Shape{2});
  ValueId a = g.add_task("a", OpKind::Relu, {x}, Shape{2});
  g.mark_output(a);  // non-scalar output
  EXPECT_THROW(Trainer(g, OptimizerConfig{}), std::invalid_argument);
}

class PipelineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PipelineEquivalence, MatchesSingleDeviceTraining) {
  const auto [num_stages, microbatches, recompute] = GetParam();
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;

  Trainer reference(m.graph, oc, /*seed=*/11);
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 11;
  popt.recompute = recompute;
  PipelineTrainer pipeline(m.graph, chunk_stages(m.graph, num_stages), popt);

  for (int step = 0; step < 10; ++step) {
    const auto mbs =
        make_microbatches(m.graph, microbatches, 1000 + 17 * static_cast<std::uint64_t>(step));
    const float ref_loss = reference.step(mbs);
    const float pipe_loss = pipeline.step(mbs);
    // Same kernels, same accumulation order: losses agree to float noise.
    EXPECT_NEAR(ref_loss, pipe_loss, 1e-5f) << "step " << step;
  }

  // Parameters agree shard-by-shard after training.
  for (std::size_t s = 0; s < pipeline.num_stages(); ++s)
    for (const auto& [v, t] : pipeline.stage_params(s))
      EXPECT_LE(max_abs_diff(t, reference.params().at(v)), 1e-4f)
          << m.graph.value(v).name;
}

INSTANTIATE_TEST_SUITE_P(
    StagesAndMicrobatches, PipelineEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(false, true)));

TEST(PipelineTrainer, RejectsOverlappingStages) {
  BuiltModel m = build_mlp(test_mlp());
  auto stages = chunk_stages(m.graph, 2);
  stages[1].push_back(stages[0][0]);  // duplicate task
  EXPECT_THROW(PipelineTrainer(m.graph, stages, PipelineOptions{}),
               std::invalid_argument);
}

TEST(PipelineTrainer, RejectsIncompleteCover) {
  BuiltModel m = build_mlp(test_mlp());
  auto stages = chunk_stages(m.graph, 2);
  stages[1].pop_back();
  EXPECT_THROW(PipelineTrainer(m.graph, stages, PipelineOptions{}),
               std::invalid_argument);
}

TEST(PipelineTrainer, StageFailureUnblocksPeersAndRethrows) {
  // A stage that throws (here: stage 0, on a microbatch missing its graph
  // inputs) must not leave downstream stages blocked in recv() forever:
  // the fabric endpoints are closed and the first exception is rethrown.
  BuiltModel m = build_mlp(test_mlp());
  PipelineTrainer pipeline(m.graph, chunk_stages(m.graph, 3),
                           PipelineOptions{});
  std::vector<TensorMap> bad(2);  // no input values at all
  EXPECT_THROW(pipeline.step(bad), std::out_of_range);
}

TEST(PipelineTrainer, ReportsSimulatedCommAndMeasuredComputeTime) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.lr = 0.05f;
  PipelineOptions plain;
  plain.opt = oc;
  plain.seed = 7;
  PipelineOptions fabric = plain;
  fabric.cluster = ClusterSpec{};  // stage s pinned to device s
  fabric.cluster->comm_model = CommModel::Fabric;

  PipelineTrainer a(m.graph, chunk_stages(m.graph, 3), plain);
  PipelineTrainer b(m.graph, chunk_stages(m.graph, 3), fabric);
  const auto mbs = make_microbatches(m.graph, 2, 99);
  // The fabric only accounts for traffic; it must not change the numbers.
  EXPECT_FLOAT_EQ(a.step(mbs), b.step(mbs));

  std::int64_t total_in = 0, total_out = 0;
  for (std::size_t s = 0; s < b.num_stages(); ++s) {
    const StageReport& r = b.stage_report(s);
    EXPECT_GT(r.compute_seconds, 0.0) << "stage " << s;
    // Every stage of a 3-stage chain touches at least one boundary.
    EXPECT_GT(r.comm_seconds, 0.0) << "stage " << s;
    total_in += r.bytes_in;
    total_out += r.bytes_out;
    // Without a cluster configured, no comm is accrued.
    EXPECT_DOUBLE_EQ(a.stage_report(s).comm_seconds, 0.0);
  }
  EXPECT_GT(total_out, 0);
  EXPECT_EQ(total_in, total_out);  // byte conservation across the pipeline
}

TEST(PipelineTrainer, RecomputeMatchesStored) {
  // Gradient checkpointing must not change the numbers, only the memory.
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.lr = 0.05f;
  PipelineOptions stored;
  stored.opt = oc;
  stored.seed = 5;
  PipelineOptions ckpt = stored;
  ckpt.recompute = true;
  PipelineTrainer a(m.graph, chunk_stages(m.graph, 3), stored);
  PipelineTrainer b(m.graph, chunk_stages(m.graph, 3), ckpt);
  for (int step = 0; step < 5; ++step) {
    const auto mbs = make_microbatches(m.graph, 2, 50 + static_cast<std::uint64_t>(step));
    EXPECT_FLOAT_EQ(a.step(mbs), b.step(mbs));
  }
}

}  // namespace
}  // namespace rannc
