// Tests for the execution runtime: optimizers, the reference trainer, and
// the multi-threaded pipeline trainer's numerical equivalence with
// single-device training (the paper's loss-parity validation, Section IV-B).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "comm/endpoint.h"
#include "models/mlp.h"
#include "obs/metrics.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/trainer.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace rannc {
namespace {

/// Deterministic synthetic classification microbatches for an MLP.
std::vector<TensorMap> make_microbatches(const TaskGraph& g, int count,
                                         std::uint64_t seed) {
  const ValueId x = g.input_values()[0];
  const ValueId y = g.input_values()[1];
  const Shape& xs = g.value(x).shape;
  const std::int64_t b = xs.dims[0];
  std::vector<TensorMap> mbs;
  for (int j = 0; j < count; ++j) {
    TensorMap m;
    m.emplace(x, Tensor::uniform(xs, 1.0f, seed + static_cast<std::uint64_t>(j)));
    Tensor labels(Shape{b});
    for (std::int64_t i = 0; i < b; ++i)
      labels.at(i) = static_cast<float>((i + j) % 10);
    m.emplace(y, std::move(labels));
    mbs.push_back(std::move(m));
  }
  return mbs;
}

MlpConfig test_mlp() {
  MlpConfig c;
  c.input_dim = 12;
  c.hidden_dims = {16, 16, 16};
  c.num_classes = 10;
  c.batch = 4;
  return c;
}

/// Splits tasks into `S` contiguous chunks (valid stages for a chain MLP).
std::vector<std::vector<TaskId>> chunk_stages(const TaskGraph& g, int S) {
  std::vector<std::vector<TaskId>> stages(static_cast<std::size_t>(S));
  const auto n = static_cast<int>(g.num_tasks());
  for (int t = 0; t < n; ++t)
    stages[static_cast<std::size_t>(std::min(S - 1, t * S / n))].push_back(t);
  return stages;
}

TEST(Optimizer, SgdStepMovesAgainstGradient) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::SGD;
  cfg.lr = 0.5f;
  Optimizer opt(cfg);
  TensorMap params, grads;
  params.emplace(0, Tensor(Shape{2}, {1.0f, 2.0f}));
  grads.emplace(0, Tensor(Shape{2}, {1.0f, -1.0f}));
  opt.step(params, grads);
  EXPECT_FLOAT_EQ(params.at(0).at(0), 0.5f);
  EXPECT_FLOAT_EQ(params.at(0).at(1), 2.5f);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::Adam;
  cfg.lr = 0.1f;
  Optimizer opt(cfg);
  TensorMap params, grads;
  params.emplace(0, Tensor(Shape{1}, {1.0f}));
  grads.emplace(0, Tensor(Shape{1}, {3.0f}));
  opt.step(params, grads);
  // Bias-corrected Adam's first update is ~lr regardless of grad magnitude.
  EXPECT_NEAR(params.at(0).at(0), 1.0f - 0.1f, 1e-5);
}

TEST(InitParams, DeterministicAndPyTorchLike) {
  MlpConfig mc = test_mlp();
  BuiltModel m = build_mlp(mc);
  TensorMap p1 = init_params(m.graph, 7);
  TensorMap p2 = init_params(m.graph, 7);
  for (const auto& [v, t] : p1)
    EXPECT_FLOAT_EQ(max_abs_diff(t, p2.at(v)), 0.0f);
  // Biases start at zero.
  for (const Value& v : m.graph.values())
    if (v.kind == ValueKind::Param && v.name.ends_with(".bias"))
      EXPECT_FLOAT_EQ(p1.at(v.id).max_abs(), 0.0f);
}

TEST(Trainer, LossDecreasesOnFixedBatch) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  Trainer trainer(m.graph, oc, /*seed=*/3);
  const auto mbs = make_microbatches(m.graph, 2, 99);
  const float first = trainer.step(mbs);
  float last = first;
  for (int i = 0; i < 30; ++i) last = trainer.step(mbs);
  EXPECT_LT(last, first * 0.7f) << "training did not reduce the loss";
}

TEST(Trainer, RequiresScalarLossOutput) {
  TaskGraph g("two_out");
  ValueId x = g.add_input("x", Shape{2});
  ValueId a = g.add_task("a", OpKind::Relu, {x}, Shape{2});
  g.mark_output(a);  // non-scalar output
  EXPECT_THROW(Trainer(g, OptimizerConfig{}), std::invalid_argument);
}

class PipelineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PipelineEquivalence, MatchesSingleDeviceTraining) {
  const auto [num_stages, microbatches, recompute] = GetParam();
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;

  Trainer reference(m.graph, oc, /*seed=*/11);
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 11;
  popt.recompute = recompute;
  PipelineTrainer pipeline(m.graph, chunk_stages(m.graph, num_stages), popt);

  for (int step = 0; step < 10; ++step) {
    const auto mbs =
        make_microbatches(m.graph, microbatches, 1000 + 17 * static_cast<std::uint64_t>(step));
    const float ref_loss = reference.step(mbs);
    const float pipe_loss = pipeline.step(mbs);
    // Same kernels, same accumulation order: losses agree to float noise.
    EXPECT_NEAR(ref_loss, pipe_loss, 1e-5f) << "step " << step;
  }

  // Parameters agree shard-by-shard after training.
  for (std::size_t s = 0; s < pipeline.num_stages(); ++s)
    for (const auto& [v, t] : pipeline.stage_params(s))
      EXPECT_LE(max_abs_diff(t, reference.params().at(v)), 1e-4f)
          << m.graph.value(v).name;
}

INSTANTIATE_TEST_SUITE_P(
    StagesAndMicrobatches, PipelineEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(false, true)));

TEST(PipelineTrainer, RejectsOverlappingStages) {
  BuiltModel m = build_mlp(test_mlp());
  auto stages = chunk_stages(m.graph, 2);
  stages[1].push_back(stages[0][0]);  // duplicate task
  EXPECT_THROW(PipelineTrainer(m.graph, stages, PipelineOptions{}),
               std::invalid_argument);
}

TEST(PipelineTrainer, RejectsIncompleteCover) {
  BuiltModel m = build_mlp(test_mlp());
  auto stages = chunk_stages(m.graph, 2);
  stages[1].pop_back();
  EXPECT_THROW(PipelineTrainer(m.graph, stages, PipelineOptions{}),
               std::invalid_argument);
}

TEST(PipelineTrainer, StageFailureUnblocksPeersAndRethrows) {
  // A stage that throws (here: stage 0, on a microbatch missing its graph
  // inputs) must not leave downstream stages blocked in recv() forever:
  // the fabric endpoints are closed and the first exception is rethrown.
  BuiltModel m = build_mlp(test_mlp());
  PipelineTrainer pipeline(m.graph, chunk_stages(m.graph, 3),
                           PipelineOptions{});
  std::vector<TensorMap> bad(2);  // no input values at all
  EXPECT_THROW(pipeline.step(bad), std::out_of_range);
}

TEST(PipelineTrainer, ReportsSimulatedCommAndMeasuredComputeTime) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.lr = 0.05f;
  PipelineOptions plain;
  plain.opt = oc;
  plain.seed = 7;
  PipelineOptions fabric = plain;
  fabric.cluster = ClusterSpec{};  // stage s pinned to device s
  fabric.cluster->comm_model = CommModel::Fabric;

  PipelineTrainer a(m.graph, chunk_stages(m.graph, 3), plain);
  PipelineTrainer b(m.graph, chunk_stages(m.graph, 3), fabric);
  const auto mbs = make_microbatches(m.graph, 2, 99);
  // The fabric only accounts for traffic; it must not change the numbers.
  EXPECT_FLOAT_EQ(a.step(mbs), b.step(mbs));

  std::int64_t total_in = 0, total_out = 0;
  for (std::size_t s = 0; s < b.num_stages(); ++s) {
    const StageReport& r = b.stage_report(s);
    EXPECT_GT(r.compute_seconds, 0.0) << "stage " << s;
    // Every stage of a 3-stage chain touches at least one boundary.
    EXPECT_GT(r.comm_seconds, 0.0) << "stage " << s;
    total_in += r.bytes_in;
    total_out += r.bytes_out;
    // Without a cluster configured, no comm is accrued.
    EXPECT_DOUBLE_EQ(a.stage_report(s).comm_seconds, 0.0);
  }
  EXPECT_GT(total_out, 0);
  EXPECT_EQ(total_in, total_out);  // byte conservation across the pipeline
}

TEST(PipelineTrainer, StepPublishesStageAndKernelMetrics) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.lr = 0.05f;
  PipelineOptions po;
  po.opt = oc;
  po.seed = 11;
  PipelineTrainer t(m.graph, chunk_stages(m.graph, 2), po);
  obs::MetricsRegistry& reg = obs::metrics();
  const std::int64_t steps_before = reg.counter("runtime.steps").get();
  const std::int64_t mm_calls_before =
      reg.counter("runtime.kernel.matmul.calls").get();
  const std::int64_t mm_bytes_before =
      reg.counter("runtime.kernel.matmul.bytes").get();
  t.step(make_microbatches(m.graph, 2, 42));
  // The causal-attribution feeds: a step counter, per-stage compute/comm
  // gauges sourced from the StageReports, and kernel call/byte counters.
  EXPECT_EQ(reg.counter("runtime.steps").get(), steps_before + 1);
  for (std::size_t s = 0; s < t.num_stages(); ++s) {
    const std::string prefix = "runtime.stage." + std::to_string(s);
    EXPECT_GT(reg.gauge(prefix + ".compute_s").get(), 0.0) << prefix;
    EXPECT_DOUBLE_EQ(reg.gauge(prefix + ".compute_s").get(),
                     t.stage_report(s).compute_seconds);
  }
  EXPECT_GT(reg.counter("runtime.kernel.matmul.calls").get(),
            mm_calls_before);
  EXPECT_GT(reg.counter("runtime.kernel.matmul.bytes").get(),
            mm_bytes_before);
}

TEST(PipelineTrainer, RecomputeMatchesStored) {
  // Gradient checkpointing must not change the numbers, only the memory.
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.lr = 0.05f;
  PipelineOptions stored;
  stored.opt = oc;
  stored.seed = 5;
  PipelineOptions ckpt = stored;
  ckpt.recompute = true;
  PipelineTrainer a(m.graph, chunk_stages(m.graph, 3), stored);
  PipelineTrainer b(m.graph, chunk_stages(m.graph, 3), ckpt);
  for (int step = 0; step < 5; ++step) {
    const auto mbs = make_microbatches(m.graph, 2, 50 + static_cast<std::uint64_t>(step));
    EXPECT_FLOAT_EQ(a.step(mbs), b.step(mbs));
  }
}

// ---- copy-on-write snapshots ------------------------------------------------

bool maps_bit_equal(const TensorMap& a, const TensorMap& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [v, t] : a) {
    auto it = b.find(v);
    if (it == b.end() || it->second.numel() != t.numel()) return false;
    if (std::memcmp(t.data(), it->second.data(),
                    static_cast<std::size_t>(t.numel()) * sizeof(float)) != 0)
      return false;
  }
  return true;
}

TEST(Optimizer, AdamKernelBitIdenticalToReferenceLoop) {
  // The fused Adam kernel (kernels_elementwise.cpp, -ffp-contract=off)
  // promises the exact bits of the scalar reference loop, at any thread
  // count. Ragged sizes cover the vector tails.
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::Adam;
  cfg.lr = 0.01f;
  ThreadPool wide(3);
  for (std::int64_t n : {1, 7, 8, 64, 1000, 4097}) {
    Optimizer ref(cfg), fast(cfg), threaded(cfg);
    TensorMap pr, pf, pt;
    Tensor init = Tensor::uniform(Shape{n}, 1.0f, 100 + static_cast<std::uint64_t>(n));
    pr.emplace(0, init.clone());
    pf.emplace(0, init.clone());
    pt.emplace(0, init.clone());
    for (int step = 0; step < 3; ++step) {
      TensorMap grads;
      grads.emplace(0, Tensor::uniform(Shape{n}, 1.0f,
                                       7 * static_cast<std::uint64_t>(step) + 1));
      set_naive_kernels(true);
      ref.step(pr, grads);
      set_naive_kernels(false);
      fast.step(pf, grads);
      set_kernel_pool(&wide);
      threaded.step(pt, grads);
      set_kernel_pool(nullptr);
      EXPECT_TRUE(maps_bit_equal(pr, pf)) << "n=" << n << " step=" << step;
      EXPECT_TRUE(maps_bit_equal(pr, pt)) << "n=" << n << " step=" << step;
    }
    const OptStateMap sr = ref.export_state();
    const OptStateMap sf = fast.export_state();
    for (const auto& [v, s] : sr) {
      EXPECT_EQ(std::memcmp(s.m.data(), sf.at(v).m.data(),
                            static_cast<std::size_t>(n) * sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(s.v.data(), sf.at(v).v.data(),
                            static_cast<std::size_t>(n) * sizeof(float)), 0);
    }
  }
}

TEST(Optimizer, CopyOnWriteStepPreservesSnapshotAndMatchesInPlace) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::Adam;
  cfg.lr = 0.1f;
  TensorMap grads;
  grads.emplace(0, Tensor::uniform(Shape{64}, 1.0f, 2));

  // In-place reference: no aliases, buffers are mutated directly.
  Optimizer ref_opt(cfg);
  TensorMap ref_params;
  ref_params.emplace(0, Tensor::uniform(Shape{64}, 1.0f, 1));
  const float* ref_buf = ref_params.at(0).data();
  ref_opt.step(ref_params, grads);
  EXPECT_EQ(ref_params.at(0).data(), ref_buf) << "unshared step must be in place";

  // CoW: a shallow snapshot alias forces the update out of place.
  Optimizer cow_opt(cfg);
  TensorMap cow_params;
  cow_params.emplace(0, Tensor::uniform(Shape{64}, 1.0f, 1));
  TensorMap snapshot = cow_params;  // shallow
  Tensor before = cow_params.at(0).clone();
  cow_opt.step(cow_params, grads);
  EXPECT_NE(cow_params.at(0).data(), snapshot.at(0).data());
  EXPECT_FLOAT_EQ(max_abs_diff(snapshot.at(0), before), 0.0f)
      << "snapshot bytes must survive the step";
  // Same arithmetic either way: CoW and in-place results are bit-identical.
  EXPECT_TRUE(maps_bit_equal(ref_params, cow_params));
}

TEST(Optimizer, SnapshotAdoptRollsBackBitExactly) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerConfig::Kind::Adam;
  cfg.lr = 0.05f;
  Optimizer opt(cfg);
  TensorMap params, g1, g2;
  params.emplace(0, Tensor::uniform(Shape{32}, 1.0f, 3));
  g1.emplace(0, Tensor::uniform(Shape{32}, 1.0f, 4));
  g2.emplace(0, Tensor::uniform(Shape{32}, 1.0f, 5));

  opt.step(params, g1);
  OptStateMap at1 = opt.export_state();  // deep reference copy
  OptStateMap snap = opt.snapshot_state();  // shallow CoW snapshot
  const std::int64_t t1 = opt.step_count();

  opt.step(params, g2);  // CoW: must not disturb snap's buffers
  opt.adopt_state(std::move(snap), t1);

  EXPECT_EQ(opt.step_count(), t1);
  OptStateMap restored = opt.export_state();
  ASSERT_EQ(restored.size(), at1.size());
  for (const auto& [v, s] : at1) {
    EXPECT_FLOAT_EQ(max_abs_diff(s.m, restored.at(v).m), 0.0f);
    EXPECT_FLOAT_EQ(max_abs_diff(s.v, restored.at(v).v), 0.0f);
  }
}

TEST(PipelineTrainer, CowRollbackRestoresExactBytes) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 13;  // transactional CoW snapshots are the default
  std::atomic<bool> fail{false};
  popt.stage_hook = [&](int stage, int) {
    if (fail.load() && stage == 1) throw std::runtime_error("injected");
  };
  PipelineTrainer pipeline(m.graph, chunk_stages(m.graph, 3), popt);

  const auto mbs = make_microbatches(m.graph, 2, 77);
  pipeline.step(mbs);
  pipeline.step(mbs);
  TensorMap good;  // deep copy of the post-step-2 parameters
  for (const auto& [v, t] : pipeline.gather_params()) good.emplace(v, t.clone());
  OptStateMap good_state = pipeline.gather_opt_state();
  const std::int64_t good_step = pipeline.opt_step_count();

  fail.store(true);
  EXPECT_THROW(pipeline.step(mbs), std::runtime_error);
  EXPECT_TRUE(maps_bit_equal(good, pipeline.gather_params()))
      << "rollback must restore the exact pre-step parameter bytes";
  EXPECT_EQ(pipeline.opt_step_count(), good_step);
  OptStateMap rolled = pipeline.gather_opt_state();
  ASSERT_EQ(rolled.size(), good_state.size());
  for (const auto& [v, s] : good_state) {
    EXPECT_FLOAT_EQ(max_abs_diff(s.m, rolled.at(v).m), 0.0f);
    EXPECT_FLOAT_EQ(max_abs_diff(s.v, rolled.at(v).v), 0.0f);
  }

  // The rolled-back trainer keeps training, identically to a twin that
  // never failed.
  fail.store(false);
  PipelineOptions twin_opt;
  twin_opt.opt = oc;
  twin_opt.seed = 13;
  PipelineTrainer twin(m.graph, chunk_stages(m.graph, 3), twin_opt);
  twin.step(mbs);
  twin.step(mbs);
  EXPECT_FLOAT_EQ(pipeline.step(mbs), twin.step(mbs));
}

TEST(PipelineTrainer, EagerAndCowSnapshotsTrainBitIdentically) {
  BuiltModel m = build_mlp(test_mlp());
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  PipelineOptions cow;
  cow.opt = oc;
  cow.seed = 21;
  PipelineOptions eager = cow;
  eager.eager_snapshots = true;
  PipelineTrainer a(m.graph, chunk_stages(m.graph, 2), cow);
  PipelineTrainer b(m.graph, chunk_stages(m.graph, 2), eager);
  for (int step = 0; step < 5; ++step) {
    const auto mbs =
        make_microbatches(m.graph, 2, 30 + static_cast<std::uint64_t>(step));
    EXPECT_FLOAT_EQ(a.step(mbs), b.step(mbs)) << "step " << step;
  }
  EXPECT_TRUE(maps_bit_equal(a.gather_params(), b.gather_params()));
}

TEST(Endpoint, TensorHandoffIsZeroCopy) {
  // Inter-stage boundary traffic moves tensor handles, not bytes: the
  // consumer receives the producer's buffer.
  comm::FabricEndpoint<TensorMap> ep(4, nullptr, true, [](const TensorMap&) {
    return static_cast<std::int64_t>(0);
  });
  Tensor t = Tensor::uniform(Shape{256}, 1.0f, 9);
  const float* produced = t.data();
  TensorMap m;
  m.emplace(0, std::move(t));
  ASSERT_TRUE(ep.send(std::move(m)));
  RecvStatus st = RecvStatus::Closed;
  auto got = ep.recv(&st, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at(0).data(), produced);
}

}  // namespace
}  // namespace rannc
