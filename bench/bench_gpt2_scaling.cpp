// Extension experiment (beyond the paper's evaluation): RaNNC on a second
// Transformer family it never saw — GPT-2 decoders from 124M to ~13B
// parameters, partitioned fully automatically from unmodified model
// descriptions. The paper motivates RaNNC with GPT-3-scale decoders
// (Section I); this bench demonstrates the "no human effort for a new
// architecture" claim that the manual baselines cannot make (Megatron /
// GPipe-Hybrid would each need a hand-written decoder implementation).
#include <cstdio>

#include "rannc.h"

int main() {
  using namespace rannc;
  struct Size {
    const char* name;
    std::int64_t hidden, layers;
  };
  const Size sizes[] = {
      {"gpt2-small", 768, 12},  {"gpt2-medium", 1024, 24},
      {"gpt2-large", 1280, 36}, {"gpt2-xl", 1600, 48},
      {"gpt2-2.7B", 2560, 32},  {"gpt2-6.7B", 4096, 32},
      {"gpt2-13B", 5120, 40},
  };
  const std::int64_t BS = 256;
  ClusterSpec cluster;

  std::printf("== Extension: GPT-2 decoder scaling under RaNNC "
              "(batch %lld, %d GPUs) ==\n\n",
              static_cast<long long>(BS), cluster.total_devices());
  std::printf("%-12s %-8s | %-10s | %-12s %-24s %-9s\n", "model", "params",
              "DataPar", "RaNNC(s/s)", "plan", "search(s)");
  for (const Size& sz : sizes) {
    Gpt2Config gc;
    gc.hidden = sz.hidden;
    gc.layers = sz.layers;
    BuiltModel gm = build_gpt2(gc);
    const BaselinePlan dp = plan_data_parallel(gm, cluster, Precision::FP32, BS);
    SearchRequest cfg;
    cfg.batch_size = BS;
    const PartitionResult rn = auto_partition(gm.graph, cfg).plan;

    char params[16];
    std::snprintf(params, sizeof(params), "%.2fB",
                  static_cast<double>(gm.graph.num_params()) / 1e9);
    char dp_cell[16] = "OOM";
    if (dp.feasible)
      std::snprintf(dp_cell, sizeof(dp_cell), "%.1f", dp.throughput(BS));
    if (rn.feasible) {
      char plan[64];
      std::snprintf(plan, sizeof(plan), "S=%zu MB=%d R=%d", rn.stages.size(),
                    rn.microbatches, rn.pipelines);
      std::printf("%-12s %-8s | %-10s | %-12.1f %-24s %-9.2f\n", sz.name,
                  params, dp_cell, rn.throughput(BS), plan,
                  rn.stats.wall_seconds);
    } else {
      std::printf("%-12s %-8s | %-10s | %-12s %-24s %-9.2f\n", sz.name, params,
                  dp_cell, "OOM", rn.infeasible_reason.c_str(),
                  rn.stats.wall_seconds);
    }
  }
  std::printf("\nEvery plan above came from the same unmodified decoder\n"
              "description — including the tied-embedding LM head, whose\n"
              "constant transpose is handled by atomic-level cloning.\n"
              "The 13B decoder OOMs on 32GB devices: at sequence length 1024\n"
              "its attention activations are ~4x BERT-512's per layer, so the\n"
              "memory wall arrives earlier — the partitioner reports the\n"
              "infeasibility honestly instead of producing a bogus plan.\n");
  return 0;
}
