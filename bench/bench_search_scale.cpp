// Experiment E10 — bound-and-prune search at very large scale (PR 10).
//
// The paper's motivating regime is a task graph of hundreds of thousands of
// operations searched over a multi-node cluster; the synthetic MoE builder
// (src/models/moe.h) reaches that magnitude honestly. This benchmark runs
// the same (model, cluster, batch) search under three engines —
//
//   exhaustive   the PR 3 sweep (prune.enabled = false): every (n, S, MB)
//                job runs its full stage DP; its dp_cells total is the
//                search-space size and the comparison baseline;
//   pruned       branch-and-bound with the live incumbent channel
//                (defaults: memory floors, roofline/comm bounds, incumbent);
//   sharded      the ClusterSpec-sharded searcher (4 simulated ranks,
//                round-barrier incumbent sync over src/comm);
//
// — and emits BENCH_SEARCH.json: per-model DP-cell counts, prune counters,
// search wall-clock, the cells/wall-clock ratios of exhaustive over pruned,
// and an equal-quality proof (bit-identical plan JSON and bit-equal
// est_iteration across all three engines). The headline gate holds the
// PR 10 acceptance bar: on the 100k-task builder the pruned engine must
// show >= 10x fewer DP cells or >= 10x search wall-clock speedup at equal
// plan cost.
//
// Usage: bench_search_scale [--quick] [--out FILE]
//   --quick   small MoE geometries, gate demoted to plan-identity only
//             (CI smoke mode; the 10x bar is meaningful only at scale)
//   --out     JSON output path (default BENCH_SEARCH.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rannc.h"

namespace {

using namespace rannc;

struct Scenario {
  std::string name;
  MoeConfig moe;
  int nodes = 0;
  int devices_per_node = 0;
  std::int64_t batch_size = 0;
  /// The PR 10 acceptance bar (>= 10x fewer DP cells or >= 10x search
  /// wall-clock) is a claim about the 100k-task regime; small scenarios
  /// report their ratios but are not held to it.
  bool gated = false;
};

struct EngineResult {
  std::string label;
  bool feasible = false;
  double search_seconds = 0;
  double wall_seconds = 0;
  std::int64_t dp_cells = 0;
  std::int64_t profile_queries = 0;
  std::int64_t bound_queries = 0;
  std::int64_t jobs_pruned = 0;
  std::int64_t jobs_dominated = 0;
  std::int64_t ranges_pruned = 0;
  std::int64_t columns_pruned = 0;
  std::int64_t paths_pruned = 0;
  std::int64_t incumbent_updates = 0;
  int shard_rounds = 0;
  double est_iteration = 0;
  std::string plan_json;
};

std::vector<Scenario> make_scenarios(bool quick) {
  std::vector<Scenario> ss;
  // The small scenarios run in both modes, so a committed full-run
  // baseline also covers everything a --quick CI rerun produces (the
  // bench-sentinel matches scenarios by name and skips ones it cannot
  // find in the baseline).
  {
    Scenario a;
    a.name = "moe-h256-L4-E8";
    a.moe.hidden = 256;
    a.moe.layers = 4;
    a.moe.seq_len = 128;
    a.moe.vocab = 2048;
    a.moe.experts = 8;
    a.nodes = 4;
    a.devices_per_node = 2;
    a.batch_size = 128;
    ss.push_back(a);

    Scenario b;
    b.name = "moe-h512-L8-E16";
    b.moe.hidden = 512;
    b.moe.layers = 8;
    b.moe.seq_len = 256;
    b.moe.vocab = 4096;
    b.moe.experts = 16;
    b.nodes = 4;
    b.devices_per_node = 4;
    b.batch_size = 256;
    ss.push_back(b);
  }
  if (!quick) {
    // The GPT-3-scale regime the paper targets: ~100k atomic tasks (80
    // layers x 128 experts), ~21B parameters — the Adam state spreads to
    // ~11 GB per device across the 32 V100s. seq/batch are sized so the
    // tightest stage peaks at ~29 GB of the 31 GB budget: the search has
    // real memory-feasibility structure (shorter pipelines and replica
    // groups are genuinely infeasible) without being a foregone
    // infeasibility everywhere.
    Scenario big;
    big.name = "moe-gpt3-h512-L80-E128";
    big.moe.hidden = 512;
    big.moe.layers = 80;
    big.moe.seq_len = 512;
    big.moe.vocab = 50257;
    big.moe.experts = 128;
    big.nodes = 8;
    big.devices_per_node = 4;
    big.batch_size = 128;
    big.gated = true;
    ss.push_back(big);
  }
  return ss;
}

EngineResult run_engine(const TaskGraph& graph, const Scenario& sc,
                        const std::string& label, bool prune, int shards,
                        int threads) {
  SearchRequest req;
  req.cluster.num_nodes = sc.nodes;
  req.cluster.devices_per_node = sc.devices_per_node;
  req.batch_size = sc.batch_size;
  req.budget.threads = threads;
  req.prune.enabled = prune;
  req.shard.shards = shards;

  const SearchResult sr = auto_partition(graph, req);
  EngineResult er;
  er.label = label;
  er.feasible = sr.feasible();
  er.search_seconds = sr.stats().search_seconds;
  er.wall_seconds = sr.stats().wall_seconds;
  er.dp_cells = sr.stats().dp_cells_visited;
  er.profile_queries = sr.stats().profile_queries;
  er.bound_queries = sr.prune().bound_queries;
  er.jobs_pruned = sr.prune().jobs_pruned;
  er.jobs_dominated = sr.prune().jobs_dominated;
  er.ranges_pruned = sr.prune().ranges_pruned();
  er.columns_pruned = sr.prune().columns_pruned;
  er.paths_pruned = sr.prune().paths_pruned;
  er.incumbent_updates = sr.prune().incumbent_updates;
  er.shard_rounds = sr.prune().shard_rounds;
  er.est_iteration = sr.plan.est_iteration_time;
  if (er.feasible) er.plan_json = plan_to_json(sr.plan);
  return er;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_SEARCH.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  struct ScenarioResult {
    std::string name;
    std::size_t tasks = 0;
    int nodes = 0, devices_per_node = 0;
    std::int64_t batch_size = 0;
    std::vector<EngineResult> engines;
    bool plans_identical = true;
    bool gated = false;        ///< held to the 10x acceptance bar
    double cells_ratio = 0;    ///< exhaustive / pruned dp_cells
    double search_speedup = 0; ///< exhaustive / pruned search seconds
  };
  std::vector<ScenarioResult> results;
  bool all_plans_identical = true;
  bool gate_10x = true;

  for (const Scenario& sc : make_scenarios(quick)) {
    std::printf("== %s ==\n", sc.name.c_str());
    const BuiltModel bm = build_moe(sc.moe);
    ScenarioResult r;
    r.name = sc.name;
    r.gated = sc.gated;
    r.tasks = bm.graph.num_tasks();
    r.nodes = sc.nodes;
    r.devices_per_node = sc.devices_per_node;
    r.batch_size = sc.batch_size;
    std::printf("  %zu tasks, cluster %dx%d, BS=%lld\n", r.tasks, sc.nodes,
                sc.devices_per_node, static_cast<long long>(sc.batch_size));

    r.engines.push_back(run_engine(bm.graph, sc, "exhaustive",
                                   /*prune=*/false, /*shards=*/1,
                                   /*threads=*/4));
    r.engines.push_back(run_engine(bm.graph, sc, "pruned",
                                   /*prune=*/true, /*shards=*/1,
                                   /*threads=*/4));
    r.engines.push_back(run_engine(bm.graph, sc, "sharded-4",
                                   /*prune=*/true, /*shards=*/4,
                                   /*threads=*/4));

    const EngineResult& ex = r.engines[0];
    const EngineResult& pr = r.engines[1];
    for (const EngineResult& er : r.engines) {
      std::printf(
          "  %-10s search=%8.3fs cells=%10lld bounds=%8lld jobs_cut=%lld "
          "est=%.6f\n",
          er.label.c_str(), er.search_seconds,
          static_cast<long long>(er.dp_cells),
          static_cast<long long>(er.bound_queries),
          static_cast<long long>(er.jobs_pruned + er.jobs_dominated),
          er.est_iteration);
      if (!er.feasible || er.plan_json != ex.plan_json)
        r.plans_identical = false;
    }
    r.cells_ratio = pr.dp_cells > 0 ? static_cast<double>(ex.dp_cells) /
                                          static_cast<double>(pr.dp_cells)
                                    : 0.0;
    r.search_speedup =
        pr.search_seconds > 0 ? ex.search_seconds / pr.search_seconds : 0.0;
    std::printf("  plans identical: %s; cells ratio %.1fx; search speedup "
                "%.1fx\n\n",
                r.plans_identical ? "yes" : "NO", r.cells_ratio,
                r.search_speedup);

    all_plans_identical = all_plans_identical && r.plans_identical;
    // The acceptance bar: >= 10x fewer DP cells or >= 10x faster search at
    // equal plan quality. A claim about the 100k-task regime, so only the
    // gated (full-size) scenarios are held to it; the small ones — and
    // every --quick run — report their ratios without gating.
    if (!quick && sc.gated && r.cells_ratio < 10.0 &&
        r.search_speedup < 10.0)
      gate_10x = false;
    results.push_back(std::move(r));
  }

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  os << "{\n";
  os << "  \"bench\": \"search_scale\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"all_plans_identical\": "
     << (all_plans_identical ? "true" : "false") << ",\n";
  os << "  \"gate_10x\": " << (gate_10x ? "true" : "false") << ",\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t si = 0; si < results.size(); ++si) {
    const auto& r = results[si];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"tasks\": " << r.tasks << ",\n";
    os << "      \"nodes\": " << r.nodes << ",\n";
    os << "      \"devices_per_node\": " << r.devices_per_node << ",\n";
    os << "      \"batch_size\": " << r.batch_size << ",\n";
    os << "      \"plans_identical\": "
       << (r.plans_identical ? "true" : "false") << ",\n";
    os << "      \"gated\": " << (r.gated ? "true" : "false") << ",\n";
    os << "      \"cells_ratio\": " << r.cells_ratio << ",\n";
    os << "      \"search_speedup\": " << r.search_speedup << ",\n";
    os << "      \"engines\": [\n";
    for (std::size_t ei = 0; ei < r.engines.size(); ++ei) {
      const auto& er = r.engines[ei];
      os << "        {\n";
      os << "          \"label\": \"" << json_escape(er.label) << "\",\n";
      os << "          \"feasible\": " << (er.feasible ? "true" : "false")
         << ",\n";
      os << "          \"search_seconds\": " << er.search_seconds << ",\n";
      os << "          \"wall_seconds\": " << er.wall_seconds << ",\n";
      os << "          \"dp_cells\": " << er.dp_cells << ",\n";
      os << "          \"profile_queries\": " << er.profile_queries << ",\n";
      os << "          \"bound_queries\": " << er.bound_queries << ",\n";
      os << "          \"jobs_pruned\": " << er.jobs_pruned << ",\n";
      os << "          \"jobs_dominated\": " << er.jobs_dominated << ",\n";
      os << "          \"ranges_pruned\": " << er.ranges_pruned << ",\n";
      os << "          \"columns_pruned\": " << er.columns_pruned << ",\n";
      os << "          \"paths_pruned\": " << er.paths_pruned << ",\n";
      os << "          \"incumbent_updates\": " << er.incumbent_updates
         << ",\n";
      os << "          \"shard_rounds\": " << er.shard_rounds << ",\n";
      os << "          \"est_iteration\": " << er.est_iteration << "\n";
      os << "        }" << (ei + 1 < r.engines.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (si + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  os.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_plans_identical) {
    std::fprintf(stderr,
                 "FAIL: engines disagree on the plan (quality not equal)\n");
    return 1;
  }
  if (!gate_10x) {
    std::fprintf(stderr,
                 "FAIL: bound-and-prune below the 10x bar at scale\n");
    return 1;
  }
  return 0;
}
