// Experiment E1 — reproduces Table I ("Previous works on model
// partitioning"): the qualitative feature matrix of the compared systems.
#include <cstdio>

#include "rannc.h"

int main() {
  std::printf("== Table I: Previous works on model partitioning ==\n\n");
  std::printf("%s\n", rannc::render_feature_table().c_str());
  std::printf(
      "RaNNC is the only system combining graph partitioning, hybrid\n"
      "parallelism, automatic partitioning, memory estimation and\n"
      "staleness-free (synchronous) pipeline execution.\n");
  return 0;
}
