// Experiment E3 — reproduces Fig. 5: training throughput of enlarged
// ResNet models (width factor 8, following Big Transfer), in the paper's
// two settings:
//   * 32 GPUs (4 nodes), batch 512: data parallelism vs RaNNC
//   * 8 GPUs (1 node), batch 128: data parallelism vs GPipe-Model
//     (torchgpipe: manual 8-stage balance, 64 microbatches) vs RaNNC
// Megatron-LM and GPipe-Hybrid are inapplicable to ResNet (Section IV-A).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rannc.h"

namespace {

std::string cell(const rannc::BaselinePlan& p, std::int64_t bs) {
  if (!p.feasible) return "OOM";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", p.throughput(bs));
  return buf;
}

}  // namespace

int main() {
  using namespace rannc;
  ClusterSpec four_nodes;               // 32 GPUs
  const char* comm_env = std::getenv("RANNC_COMM_MODEL");
  if (comm_env && std::string(comm_env) == "fabric")
    four_nodes.comm_model = CommModel::Fabric;
  ClusterSpec one_node = four_nodes.single_node();  // 8 GPUs

  std::printf("== Fig. 5: enlarged ResNet training throughput "
              "(samples/s, comm model: %s) ==\n\n",
              four_nodes.comm_model == CommModel::Fabric ? "fabric"
                                                         : "analytic");

  for (int depth : {50, 101, 152}) {
    ResNetConfig rc;
    rc.depth = depth;
    rc.width_factor = 8;
    BuiltModel rm = build_resnet(rc);
    const double params_b = static_cast<double>(rm.graph.num_params()) / 1e9;

    // ---- 32 GPUs, batch 512 ----
    const BaselinePlan dp32 =
        plan_data_parallel(rm, four_nodes, Precision::FP32, 512);
    SearchRequest cfg32;
    cfg32.cluster = four_nodes;
    cfg32.batch_size = 512;
    const PartitionResult rn32 = auto_partition(rm.graph, cfg32).plan;

    // ---- 8 GPUs, batch 128 ----
    const BaselinePlan dp8 =
        plan_data_parallel(rm, one_node, Precision::FP32, 128);
    const BaselinePlan gp8 = plan_gpipe_model(rm, one_node, 128, 64);
    SearchRequest cfg8;
    cfg8.cluster = one_node;
    cfg8.batch_size = 128;
    const PartitionResult rn8 = auto_partition(rm.graph, cfg8).plan;

    std::printf("ResNet%dx8 (%.2fB params)\n", depth, params_b);
    std::printf("  32 GPUs, batch 512: DataParallel %-8s RaNNC %s",
                cell(dp32, 512).c_str(),
                rn32.feasible ? std::to_string(rn32.throughput(512)).substr(0, 6).c_str()
                              : "OOM");
    if (rn32.feasible)
      std::printf("  (S=%zu, MB=%d, R=%d)", rn32.stages.size(),
                  rn32.microbatches, rn32.pipelines);
    std::printf("\n");
    std::printf("   8 GPUs, batch 128: DataParallel %-8s GPipe-Model %-8s RaNNC %s",
                cell(dp8, 128).c_str(), cell(gp8, 128).c_str(),
                rn8.feasible ? std::to_string(rn8.throughput(128)).substr(0, 6).c_str()
                             : "OOM");
    if (rn8.feasible)
      std::printf("  (S=%zu, MB=%d)", rn8.stages.size(), rn8.microbatches);
    std::printf("\n\n");
  }

  std::printf(
      "Shape checks (paper Section IV-B):\n"
      " * Data parallelism only trains the smallest enlarged ResNet.\n"
      " * RaNNC and GPipe-Model train all of them; RaNNC outperforms\n"
      "   GPipe-Model by a large margin in every setting (op-granular\n"
      "   balance + automatically chosen microbatch count vs manual\n"
      "   whole-layer balance with a fixed 64 microbatches).\n");
  return 0;
}
