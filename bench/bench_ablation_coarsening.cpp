// Experiment E4 — reproduces the Section IV-C coarsening ablation:
// RaNNC vs a variant that skips block-level partitioning and runs the
// stage DP directly over atomic subcomponents, with costs approximated by
// summing standalone per-component profiles.
//
// Paper findings being reproduced:
//  * the variant trains at most the 48-layer model (memory estimates from
//    summed activations are gross over-estimates);
//  * where it trains, throughput is ~33% below full RaNNC (summed
//    standalone times over-estimate non-uniformly, steering the DP to
//    worse partitions and worse S/MB choices);
//  * the search does not finish for deeper models (emulated here by a DP
//    cell budget standing in for the paper's 24-hour timeout).
#include <algorithm>
#include <cstdio>

#include "rannc.h"

int main() {
  using namespace rannc;
  const std::int64_t BS = 256;

  std::printf("== Section IV-C: effect of coarsening (BERT, hidden 1024) ==\n\n");
  std::printf("%-7s | %-28s | %-36s\n", "layers", "RaNNC (with coarsening)",
              "no-coarsening variant");
  std::printf("%-7s | %-10s %-8s %-8s | %-10s %-8s %-16s\n", "", "thr(s/s)",
              "stages", "cells", "thr(s/s)", "stages", "search");

  for (std::int64_t L : {24LL, 48LL, 96LL}) {
    BertConfig bc;
    bc.hidden = 1024;
    bc.layers = L;
    BuiltModel bm = build_bert(bc);

    SearchRequest with;
    with.batch_size = BS;
    const PartitionResult rw = auto_partition(bm.graph, with).plan;

    SearchRequest without = with;
    without.use_coarsening = false;
    // Stand-in for the paper's 24h wall-clock limit: a DP cell budget.
    without.budget.max_dp_cells = 400'000'000;
    const PartitionResult ro = auto_partition(bm.graph, without).plan;

    char wcell[64] = "OOM";
    if (rw.feasible)
      std::snprintf(wcell, sizeof(wcell), "%.1f", rw.throughput(BS));
    char ocell[64] = "OOM";
    const char* search = "completed";
    if (ro.feasible) {
      std::snprintf(ocell, sizeof(ocell), "%.1f", ro.throughput(BS));
    } else if (ro.infeasible_reason == "search budget exceeded") {
      search = "TIMEOUT (>24h equiv.)";
    }
    std::printf("%-7lld | %-10s %-8zu %-8lld | %-10s %-8zu %-16s\n",
                static_cast<long long>(L), wcell, rw.stages.size(),
                static_cast<long long>(rw.stats.dp_cells_visited), ocell,
                ro.stages.size(), search);
    if (rw.feasible && ro.feasible) {
      const double slowdown =
          100.0 * (1.0 - ro.throughput(BS) / rw.throughput(BS));
      std::printf("         -> variant is %.0f%% slower\n",
                  std::max(0.0, slowdown));
    }
  }
  std::printf(
      "\nDirection matches Section IV-C: the variant trains at most the\n"
      "48-layer model, is slower where it trains, and its atomic-granularity\n"
      "search explodes beyond that. The paper reports ~33%% slowdown at 48\n"
      "layers; our analytic profiler is noiseless, so summed standalone\n"
      "estimates stay nearly proportional to merged profiles and mislead the\n"
      "DP less than real measurement error does (see EXPERIMENTS.md).\n");
  return 0;
}
