// Communication-fabric benchmark: sweeps message size x rank count x
// node span and emits analytic-vs-simulated collective times as JSON
// (stdout and BENCH_COMM_FABRIC.json), extending the BENCH_*.json
// trajectory. The interesting column is the ratio: 1.0 where the ring is
// uncontended (the fabric degenerates to the closed form), > 1 where
// co-located ranks share a NIC — the effect the closed-form model of
// `src/cluster/cluster_spec.cpp` cannot represent.
#include <cstdio>
#include <string>
#include <vector>

#include "rannc.h"

namespace {

struct Row {
  const char* op;
  std::int64_t bytes;
  int ranks;
  bool spans_nodes;
  double analytic;
  double simulated;
};

std::string to_json(const Row& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  {\"op\": \"%s\", \"bytes\": %lld, \"ranks\": %d, "
                "\"spans_nodes\": %s, \"analytic_s\": %.9g, "
                "\"simulated_s\": %.9g, \"ratio\": %.4f}",
                r.op, static_cast<long long>(r.bytes), r.ranks,
                r.spans_nodes ? "true" : "false", r.analytic, r.simulated,
                r.analytic > 0 ? r.simulated / r.analytic : 1.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rannc;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  ClusterSpec analytic;  // paper testbed: 4 nodes x 8 V100
  ClusterSpec fabric = analytic;
  fabric.comm_model = CommModel::Fabric;

  const std::vector<std::int64_t> sizes =
      quick ? std::vector<std::int64_t>{1 << 20, 64 << 20}
            : std::vector<std::int64_t>{1 << 10, 1 << 14, 1 << 18, 1 << 22,
                                        1 << 26, 1LL << 28};
  const std::vector<int> rank_counts =
      quick ? std::vector<int>{8, 32} : std::vector<int>{2, 4, 8, 16, 32};

  std::vector<Row> rows;
  for (std::int64_t bytes : sizes) {
    for (const bool spans : {false, true}) {
      rows.push_back({"p2p", bytes, 2, spans,
                      comm_p2p_time(analytic, bytes, !spans),
                      comm_p2p_time(fabric, bytes, !spans)});
      for (int ranks : rank_counts)
        rows.push_back({"allreduce", bytes, ranks, spans,
                        comm_allreduce_time(analytic, bytes, ranks, spans),
                        comm_allreduce_time(fabric, bytes, ranks, spans)});
    }
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json += to_json(rows[i]);
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "]\n";
  std::fputs(json.c_str(), stdout);

  if (std::FILE* f = std::fopen("BENCH_COMM_FABRIC.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote BENCH_COMM_FABRIC.json (%zu rows)\n",
                 rows.size());
  }
  return 0;
}
