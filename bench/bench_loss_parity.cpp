// Experiment E5 — the paper's loss-parity validation (Section IV-B, final
// paragraph): after the same number of steps, RaNNC-partitioned pipeline
// training reaches the same loss as the unpartitioned reference (the paper
// compared RaNNC vs Megatron-LM on real BERT pre-training; here we train a
// real model on the CPU runtime, partitioned by the actual RaNNC plan, and
// compare against single-device execution).
#include <cmath>
#include <cstdio>

#include "rannc.h"

int main() {
  using namespace rannc;

  MlpConfig mc;
  mc.input_dim = 24;
  mc.hidden_dims = {48, 48, 48, 48};
  mc.num_classes = 8;
  mc.batch = 8;
  BuiltModel m = build_mlp(mc);

  // Miniature cluster whose devices cannot hold the whole model, so the
  // partitioner must pipeline.
  SearchRequest cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 4;
  cfg.cluster.device.memory_bytes = 5 * m.graph.num_params() * 4;  // > model state, < state + activations
  cfg.batch_size = 32;
  cfg.num_blocks = 8;
  PartitionResult plan = auto_partition(m.graph, cfg).plan;
  if (!plan.feasible) {
    std::printf("partitioning infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  std::printf("== Loss parity: RaNNC-partitioned pipeline vs single device ==\n");
  std::printf("plan: %zu stages, %d microbatches\n\n", plan.stages.size(),
              plan.microbatches);

  std::vector<std::vector<TaskId>> stage_tasks;
  for (const StagePlan& s : plan.stages) stage_tasks.push_back(s.tasks);

  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 42;
  popt.recompute = true;
  PipelineTrainer pipeline(*plan.graph, stage_tasks, popt);
  Trainer reference(*plan.graph, oc, /*seed=*/42);

  const ValueId xin = plan.graph->input_values()[0];
  const ValueId yin = plan.graph->input_values()[1];
  const Shape& xs = plan.graph->value(xin).shape;

  std::printf("%-6s %-12s %-12s %-10s\n", "step", "pipeline", "reference",
              "|diff|");
  float pipe_loss = 0, ref_loss = 0;
  for (int step = 0; step < 200; ++step) {
    std::vector<TensorMap> mbs;
    for (int j = 0; j < plan.microbatches; ++j) {
      TensorMap mb;
      mb.emplace(xin, Tensor::uniform(xs, 1.0f,
                                      901 + 13 * static_cast<std::uint64_t>(step) +
                                          static_cast<std::uint64_t>(j)));
      Tensor labels(Shape{xs.dims[0]});
      for (std::int64_t i = 0; i < xs.dims[0]; ++i)
        labels.at(i) = static_cast<float>((i + j + step) % 8);
      mb.emplace(yin, std::move(labels));
      mbs.push_back(std::move(mb));
    }
    pipe_loss = pipeline.step(mbs);
    ref_loss = reference.step(mbs);
    if (step % 40 == 0 || step == 199)
      std::printf("%-6d %-12.6f %-12.6f %-10.2e\n", step, pipe_loss, ref_loss,
                  std::fabs(pipe_loss - ref_loss));
  }
  const bool pass = std::fabs(pipe_loss - ref_loss) < 1e-3;
  std::printf("\nfinal |loss diff| = %.2e -> %s (paper threshold 1e-3)\n",
              std::fabs(pipe_loss - ref_loss), pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
