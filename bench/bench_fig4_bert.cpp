// Experiment E2 — reproduces Fig. 4: training throughput of enlarged BERT
// models (hidden in {1024, 1536, 2048}, layers in {24..256}) on 32 V100s
// (4 nodes x 8), global batch 256, for:
//   PyTorch data parallelism, Megatron-LM (fp32 + mixed), GPipe-Hybrid,
//   PipeDream-2BW, and RaNNC (fp32 + mixed).
// Infeasible (out-of-memory) settings print "OOM" — the paper's missing
// bars. Absolute samples/s depend on the device model; the claims under
// test are the *shape*: who trains what, and who is faster.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rannc.h"

namespace {

std::string cell(const rannc::BaselinePlan& p, std::int64_t bs) {
  if (!p.feasible) return "OOM";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", p.throughput(bs));
  return buf;
}

std::string cell(const rannc::PartitionResult& r, std::int64_t bs) {
  if (!r.feasible) return "OOM";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f (S=%zu,MB=%d)", r.throughput(bs),
                r.stages.size(), r.microbatches);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rannc;
  // --quick limits the sweep for CI-style runs.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  ClusterSpec cluster;  // paper testbed: 4 nodes x 8 V100-32GB
  // RANNC_COMM_MODEL=fabric swaps the closed-form comm estimates for the
  // discrete-event fabric simulation (src/comm) in every planner.
  const char* comm_env = std::getenv("RANNC_COMM_MODEL");
  if (comm_env && std::string(comm_env) == "fabric")
    cluster.comm_model = CommModel::Fabric;
  const std::int64_t BS = 256;

  std::printf("== Fig. 4: enlarged BERT pre-training throughput "
              "(samples/s, batch %lld, %d GPUs, comm model: %s) ==\n\n",
              static_cast<long long>(BS), cluster.total_devices(),
              cluster.comm_model == CommModel::Fabric ? "fabric" : "analytic");
  std::printf("%-6s %-6s %-8s | %-9s %-10s %-11s %-10s %-10s | %-22s %-12s\n",
              "hidden", "layers", "params", "DataPar", "Megatron",
              "Megatron+A", "GPipe-H", "PD-2BW", "RaNNC", "RaNNC+AMP");

  const std::vector<std::int64_t> hiddens =
      quick ? std::vector<std::int64_t>{1024}
            : std::vector<std::int64_t>{1024, 1536, 2048};
  const std::vector<std::int64_t> layer_counts =
      quick ? std::vector<std::int64_t>{24, 96}
            : std::vector<std::int64_t>{24, 48, 96, 144, 192, 256};

  for (std::int64_t h : hiddens) {
    for (std::int64_t L : layer_counts) {
      BertConfig bc;
      bc.hidden = h;
      bc.layers = L;
      BuiltModel bm = build_bert(bc);

      const BaselinePlan dp =
          plan_data_parallel(bm, cluster, Precision::FP32, BS);
      const BaselinePlan mg = plan_megatron(bm, cluster, Precision::FP32, BS);
      const BaselinePlan mg_amp =
          plan_megatron(bm, cluster, Precision::Mixed, BS);
      const BaselinePlan gp = plan_gpipe_hybrid(bm, cluster, BS);
      const BaselinePlan pd = plan_pipedream_2bw(bm, cluster, BS);

      SearchRequest cfg;
      cfg.cluster = cluster;
      cfg.batch_size = BS;
      const PartitionResult rn = auto_partition(bm.graph, cfg).plan;
      cfg.precision = Precision::Mixed;
      const PartitionResult rn_amp = auto_partition(bm.graph, cfg).plan;

      char params[16];
      std::snprintf(params, sizeof(params), "%.2fB",
                    static_cast<double>(bm.graph.num_params()) / 1e9);
      std::printf("%-6lld %-6lld %-8s | %-9s %-10s %-11s %-10s %-10s | %-22s %-12s\n",
                  static_cast<long long>(h), static_cast<long long>(L), params,
                  cell(dp, BS).c_str(), cell(mg, BS).c_str(),
                  cell(mg_amp, BS).c_str(), cell(gp, BS).c_str(),
                  cell(pd, BS).c_str(), cell(rn, BS).c_str(),
                  rn_amp.feasible
                      ? std::to_string(rn_amp.throughput(BS)).substr(0, 6).c_str()
                      : "OOM");
    }
    std::printf("\n");
  }

  std::printf(
      "Shape checks (paper Section IV-B):\n"
      " * Data parallelism OOMs first; Megatron-LM next (no gradient\n"
      "   accumulation + unsharded activation buffers).\n"
      " * RaNNC trains the 12.9B-parameter model (~5x Megatron's largest).\n"
      " * RaNNC >= GPipe-Hybrid everywhere; the gap narrows as models grow.\n"
      " * PipeDream-2BW sits near RaNNC (async, no bubble) but is not\n"
      "   staleness-free.\n");
  return 0;
}
