// Micro-benchmarks (google-benchmark) for the hot paths: CPU tensor
// kernels used by the execution runtime and the three partitioning phases.
#include <benchmark/benchmark.h>

#include "rannc.h"

namespace {

using namespace rannc;

/// Pins the kernel path (naive reference vs blocked) for one benchmark run.
struct KernelPath {
  explicit KernelPath(bool naive) { set_naive_kernels(naive); }
  ~KernelPath() { set_naive_kernels(false); }
};

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  KernelPath path(state.range(1) != 0);
  Tensor a = Tensor::uniform(Shape{n, n}, 1.0f, 1);
  Tensor b = Tensor::uniform(Shape{n, n}, 1.0f, 2);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
// Second arg: 0 = blocked (production), 1 = naive reference loops.
BENCHMARK(BM_MatMul)
    ->Args({64, 0})->Args({128, 0})->Args({256, 0})->Args({512, 0})
    ->Args({256, 1})->Args({512, 1});

void BM_MatMulGradA(benchmark::State& state) {
  const auto n = state.range(0);
  KernelPath path(state.range(1) != 0);
  Tensor g = Tensor::uniform(Shape{n, n}, 1.0f, 1);
  Tensor b = Tensor::uniform(Shape{n, n}, 1.0f, 2);
  for (auto _ : state) benchmark::DoNotOptimize(matmul_grad_a(g, b));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulGradA)->Args({256, 0})->Args({256, 1});

void BM_MatMulGradB(benchmark::State& state) {
  const auto n = state.range(0);
  KernelPath path(state.range(1) != 0);
  Tensor a = Tensor::uniform(Shape{n, n}, 1.0f, 1);
  Tensor g = Tensor::uniform(Shape{n, n}, 1.0f, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(matmul_grad_b(a, g, Shape{n, n}));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulGradB)->Args({256, 0})->Args({256, 1});

void BM_Transpose(benchmark::State& state) {
  const auto n = state.range(0);
  KernelPath path(state.range(1) != 0);
  Tensor x = Tensor::uniform(Shape{n, n}, 1.0f, 1);
  for (auto _ : state) benchmark::DoNotOptimize(transpose(x, {1, 0}));
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Transpose)->Args({1024, 0})->Args({1024, 1});

void BM_Softmax(benchmark::State& state) {
  Tensor a = Tensor::uniform(Shape{state.range(0), 512}, 1.0f, 3);
  for (auto _ : state) benchmark::DoNotOptimize(softmax_lastdim(a));
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(512);

void BM_LayerNorm(benchmark::State& state) {
  Tensor x = Tensor::uniform(Shape{state.range(0), 768}, 1.0f, 4);
  Tensor g(Shape{768}, 1.0f);
  Tensor b(Shape{768}, 0.0f);
  for (auto _ : state) benchmark::DoNotOptimize(layernorm(x, g, b));
}
BENCHMARK(BM_LayerNorm)->Arg(64)->Arg(512);

void BM_Conv2d(benchmark::State& state) {
  KernelPath path(state.range(0) != 0);
  Tensor x = Tensor::uniform(Shape{1, 16, 32, 32}, 1.0f, 5);
  Tensor w = Tensor::uniform(Shape{16, 16, 3, 3}, 1.0f, 6);
  for (auto _ : state) benchmark::DoNotOptimize(conv2d(x, w, 1, 1));
}
BENCHMARK(BM_Conv2d)->Arg(0)->Arg(1);

BuiltModel bench_bert(std::int64_t layers) {
  BertConfig c;
  c.hidden = 1024;
  c.layers = layers;
  return build_bert(c);
}

void BM_AtomicPartition(benchmark::State& state) {
  BuiltModel m = bench_bert(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(atomic_partition(m.graph));
}
BENCHMARK(BM_AtomicPartition)->Arg(24)->Arg(96);

void BM_BlockPartition(benchmark::State& state) {
  BuiltModel m = bench_bert(state.range(0));
  AtomicPartition ap = atomic_partition(m.graph);
  GraphProfiler prof(ap.graph, DeviceSpec{});
  BlockPartitionConfig cfg;
  cfg.k = 32;
  cfg.profile_batch = 8;
  for (auto _ : state) benchmark::DoNotOptimize(block_partition(ap, prof, cfg));
}
BENCHMARK(BM_BlockPartition)->Arg(24)->Arg(96);

void BM_StageDp(benchmark::State& state) {
  // Synthetic 32-unit DP at the paper's scale: S stages over 8 devices.
  const int N = 32;
  std::vector<double> w(N, 1.0);
  for (int i = 0; i < N; ++i) w[static_cast<std::size_t>(i)] += 0.1 * (i % 5);
  StageDpInput in;
  in.num_units = N;
  in.num_stages = static_cast<int>(state.range(0));
  in.num_devices = 8;
  in.batch_size = 256;
  in.replica_factor = 4;
  in.microbatches = 8;
  in.device_memory = 1LL << 40;
  in.profile = [&w](int lo, int hi, std::int64_t bsize, int, int) {
    StageProfile p;
    double t = 0;
    for (int i = lo; i < hi; ++i) t += w[static_cast<std::size_t>(i)];
    p.t_f = t * static_cast<double>(bsize) * 1e-3;
    p.t_b = 2 * p.t_f;
    p.mem = 1;
    return p;
  };
  for (auto _ : state) benchmark::DoNotOptimize(form_stage_dp(in));
}
BENCHMARK(BM_StageDp)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
