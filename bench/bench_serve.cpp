// Serve-layer benchmark: a Zipf-distributed request trace over a small
// model zoo driven through PlanServer, reporting cache hit rate and
// hit-path latency percentiles, emitted as BENCH_SERVE.json.
//
// The trace models a plan service's steady state: a handful of hot
// (model, geometry) keys dominate, with a long tail of colder requests.
// Three phases:
//   1. cold+warm  — the Zipf trace against an empty store: first touch of
//                   each key is a search (miss), every repeat a memory hit;
//   2. restart    — a fresh PlanServer over the same store directory, one
//                   request per distinct key: every answer must come back
//                   a hit served from disk, byte-identical to phase 1;
//   3. rerun      — the full Zipf trace against the restarted server:
//                   100% hits, the steady-state the daemon lives in.
//
// The acceptance gate is the warm hit path: p99 must stay at or under
// 1 ms (exit 1 otherwise). Latencies are PlanServer-measured
// (ServeResponse::latency_us), single driver thread.
//
// Usage: bench_serve [--quick] [--out FILE] [--store DIR]
//   --quick   120-request trace (CI smoke mode; default 400)
//   --out     JSON output path (default BENCH_SERVE.json)
//   --store   durable store directory (default: fresh temp dir, removed)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "rannc.h"

namespace {

using namespace rannc;

struct ZooEntry {
  std::string name;
  serve::ServeRequest req;
};

serve::ServeRequest make_req(const serve::ModelSpec& spec, int nodes, int dpn,
                             std::int64_t batch) {
  serve::ServeRequest r;
  r.model = spec;
  r.search.cluster.num_nodes = nodes;
  r.search.cluster.devices_per_node = dpn;
  r.search.batch_size = batch;
  return r;
}

/// Eight request types, hot-to-cold: mixed models and geometries, all small
/// enough that a cold search is milliseconds. Entries 1/2 and 4/5 share a
/// fingerprint across different geometries, exercising the sibling-memo
/// warm start on the miss path.
std::vector<ZooEntry> make_zoo() {
  std::vector<ZooEntry> zoo;
  serve::ModelSpec mlp;
  mlp.model = "mlp";
  zoo.push_back({"mlp-1x2-bs16", make_req(mlp, 1, 2, 16)});
  zoo.push_back({"mlp-1x4-bs32", make_req(mlp, 1, 4, 32)});
  serve::ModelSpec mlp_wide = mlp;
  mlp_wide.input_dim = 128;
  zoo.push_back({"mlp128-1x2-bs16", make_req(mlp_wide, 1, 2, 16)});
  serve::ModelSpec bert;
  bert.model = "bert";
  bert.layers = 2;
  bert.hidden = 128;
  bert.heads = 2;
  bert.seq = 32;
  bert.vocab = 512;
  zoo.push_back({"bert-tiny-1x2-bs8", make_req(bert, 1, 2, 8)});
  zoo.push_back({"bert-tiny-2x2-bs16", make_req(bert, 2, 2, 16)});
  serve::ModelSpec gpt2;
  gpt2.model = "gpt2";
  gpt2.layers = 2;
  gpt2.hidden = 128;
  gpt2.heads = 2;
  gpt2.seq = 64;
  gpt2.vocab = 512;
  zoo.push_back({"gpt2-tiny-1x2-bs8", make_req(gpt2, 1, 2, 8)});
  serve::ModelSpec resnet;
  resnet.model = "resnet";
  resnet.depth = 50;
  zoo.push_back({"resnet50-1x2-bs8", make_req(resnet, 1, 2, 8)});
  zoo.push_back({"mlp128-1x4-bs32", make_req(mlp_wide, 1, 4, 32)});
  return zoo;
}

/// Deterministic Zipf(s = 1.2) trace over `n` ranks via a fixed-seed LCG —
/// no RNG state outside this function, so every run replays the same trace.
std::vector<std::size_t> zipf_trace(std::size_t n, std::size_t len,
                                    double s = 1.2) {
  std::vector<double> cdf(n);
  double total = 0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;

  std::vector<std::size_t> trace;
  trace.reserve(len);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < len; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(x >> 11) / static_cast<double>(1ULL << 53);
    trace.push_back(static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return trace;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::min(static_cast<double>(v.size() - 1),
               std::ceil(p * static_cast<double>(v.size())) - 1));
  return v[idx];
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

struct PhaseStats {
  std::int64_t requests = 0, hits = 0, misses = 0, disk_hits = 0;
  std::vector<double> hit_us, miss_us;

  void add(const serve::ServeResponse& r) {
    ++requests;
    if (r.status == serve::ServeResponse::Status::Hit) {
      ++hits;
      if (r.from_disk) ++disk_hits;
      hit_us.push_back(r.latency_us);
    } else {
      ++misses;
      miss_us.push_back(r.latency_us);
    }
  }
  [[nodiscard]] double hit_rate() const {
    return requests > 0
               ? static_cast<double>(hits) / static_cast<double>(requests)
               : 0;
  }
};

void print_phase(const char* name, const PhaseStats& p) {
  std::printf(
      "%-10s %5lld requests  hit rate %.3f (%lld from disk)  "
      "hit p50/p99 %.1f/%.1f us  miss mean %.0f us\n",
      name, static_cast<long long>(p.requests), p.hit_rate(),
      static_cast<long long>(p.disk_hits), percentile(p.hit_us, 0.50),
      percentile(p.hit_us, 0.99), mean(p.miss_us));
}

void emit_phase(std::ofstream& os, const char* name, const PhaseStats& p,
                bool last) {
  os << "    \"" << name << "\": {\n";
  os << "      \"requests\": " << p.requests << ",\n";
  os << "      \"hits\": " << p.hits << ",\n";
  os << "      \"misses\": " << p.misses << ",\n";
  os << "      \"disk_hits\": " << p.disk_hits << ",\n";
  os << "      \"hit_rate\": " << p.hit_rate() << ",\n";
  os << "      \"hit_p50_us\": " << percentile(p.hit_us, 0.50) << ",\n";
  os << "      \"hit_p99_us\": " << percentile(p.hit_us, 0.99) << ",\n";
  os << "      \"hit_mean_us\": " << mean(p.hit_us) << ",\n";
  os << "      \"miss_mean_us\": " << mean(p.miss_us) << "\n";
  os << "    }" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_SERVE.json";
  std::string store_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE] [--store DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  const bool temp_store = store_dir.empty();
  if (temp_store)
    store_dir = (std::filesystem::temp_directory_path() / "bench_serve_store")
                    .string();
  std::filesystem::remove_all(store_dir);

  const std::vector<ZooEntry> zoo = make_zoo();
  const std::size_t trace_len = quick ? 120 : 400;
  const std::vector<std::size_t> trace = zipf_trace(zoo.size(), trace_len);

  std::printf("== serve bench: %zu keys, %zu-request Zipf(1.2) trace ==\n",
              zoo.size(), trace.size());

  serve::ServeOptions so;
  so.store_dir = store_dir;

  // Phase 1: cold store, mixed trace. Exactly one search per distinct key
  // touched; every other request is a memory hit.
  PhaseStats cold;
  std::vector<std::string> plans(zoo.size());
  {
    serve::PlanServer server(so);
    for (std::size_t rank : trace) {
      const serve::ServeResponse r = server.handle(zoo[rank].req);
      if (r.status != serve::ServeResponse::Status::Hit &&
          r.status != serve::ServeResponse::Status::Miss) {
        std::fprintf(stderr, "request '%s' failed: %s\n",
                     zoo[rank].name.c_str(), r.error.c_str());
        return 1;
      }
      if (plans[rank].empty()) plans[rank] = r.plan_json;
      cold.add(r);
    }
    print_phase("cold+warm", cold);
  }

  // Phase 2: daemon restart. A fresh server over the same store must answer
  // every distinct key from disk, byte-identically.
  PhaseStats restart, rerun;
  {
    serve::PlanServer server(so);
    for (std::size_t rank = 0; rank < zoo.size(); ++rank) {
      const serve::ServeResponse r = server.handle(zoo[rank].req);
      if (r.status != serve::ServeResponse::Status::Hit || !r.from_disk) {
        // Keys never touched by the trace legitimately miss; Zipf(1.2)
        // over 8 keys touches all of them at these trace lengths.
        std::fprintf(stderr, "restart: '%s' was not a disk hit\n",
                     zoo[rank].name.c_str());
        return 1;
      }
      if (r.plan_json != plans[rank]) {
        std::fprintf(stderr, "restart: '%s' plan differs from phase 1\n",
                     zoo[rank].name.c_str());
        return 1;
      }
      restart.add(r);
    }
    print_phase("restart", restart);

    // Phase 3: the steady state — the full trace, all hits.
    for (std::size_t rank : trace) rerun.add(server.handle(zoo[rank].req));
    print_phase("rerun", rerun);
  }

  if (temp_store) std::filesystem::remove_all(store_dir);

  const double warm_p99 = percentile(rerun.hit_us, 0.99);
  const bool gate_ok = rerun.hits == static_cast<std::int64_t>(trace.size()) &&
                       warm_p99 <= 1000.0;

  std::ofstream os(out_path);
  if (!os) {
    RANNC_LOG_ERROR("cannot open " << out_path << " for writing");
    return 1;
  }
  os << "{\n";
  os << "  \"bench\": \"serve\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"zipf_s\": 1.2,\n";
  os << "  \"distinct_keys\": " << zoo.size() << ",\n";
  os << "  \"trace_len\": " << trace.size() << ",\n";
  os << "  \"phases\": {\n";
  emit_phase(os, "cold_warm", cold, false);
  emit_phase(os, "restart", restart, false);
  emit_phase(os, "rerun", rerun, true);
  os << "  },\n";
  os << "  \"warm_hit_p99_us\": " << warm_p99 << ",\n";
  os << "  \"gate_warm_p99_le_1ms\": " << (gate_ok ? "true" : "false") << "\n";
  os << "}\n";
  os.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: warm p99 %.1f us (gate 1000 us) or rerun not all hits "
                 "(%lld/%zu)\n",
                 warm_p99, static_cast<long long>(rerun.hits), trace.size());
    return 1;
  }
  std::printf("OK: warm hit p99 %.1f us <= 1000 us, rerun 100%% hits\n",
              warm_p99);
  return 0;
}
