// Runtime raw-speed benchmark: end-to-end training steps/sec on the same
// loss-parity models the equivalence suite trains, comparing the seed
// configuration (naive reference kernels, eager deep-clone snapshots) with
// the fast path (blocked/SIMD kernels, arena allocation, copy-on-write
// snapshots). Emits BENCH_RUNTIME.json and gates on the tentpole claim:
// fast-path step throughput >= `--gate`x (default 5x) the naive path on
// every model, with blocked results bit-identical across thread counts and
// final losses matching the naive run within the loss-parity threshold.
//
// Usage: bench_runtime [--quick] [--out FILE] [--gate X]
//   --quick   fewer measured steps (CI smoke); gate still evaluated
//   --out     write the JSON report to FILE (default BENCH_RUNTIME.json
//             in the current directory)
//   --gate    required min speedup (0 disables the gate)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "rannc.h"
#include "tensor/kernels_blocked.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace {

using namespace rannc;

struct RunConfig {
  bool naive = false;   // reference kernels instead of blocked
  bool eager = false;   // deep-clone snapshots instead of CoW
  bool arena = true;    // slab pooling on
};

struct RunResult {
  double steps_per_sec = 0;
  double ms_per_step = 0;
  double fresh_bytes_per_step = 0;  // heap bytes actually allocated
  double arena_hit_rate = 0;        // pool hits / allocs
  float final_loss = 0;
  std::vector<float> losses;
};

struct ModelCase {
  std::string name;
  BuiltModel model;
  std::vector<std::vector<TaskId>> stage_tasks;
  int microbatches = 1;
  std::function<std::vector<TensorMap>(int step)> make_batch;
};

ModelCase make_mlp_case() {
  MlpConfig mc;
  mc.input_dim = 256;
  mc.hidden_dims = {1024, 1024, 1024, 1024};
  mc.num_classes = 64;
  mc.batch = 32;
  ModelCase c{"mlp", build_mlp(mc), {}, 1, nullptr};

  SearchRequest cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 4;
  cfg.cluster.device.memory_bytes = 5 * c.model.graph.num_params() * 4;
  cfg.batch_size = 32;
  cfg.num_blocks = 8;
  PartitionResult plan = auto_partition(c.model.graph, cfg).plan;
  if (!plan.feasible) {
    std::fprintf(stderr, "mlp partition infeasible: %s\n",
                 plan.infeasible_reason.c_str());
    std::exit(1);
  }
  for (const StagePlan& s : plan.stages) c.stage_tasks.push_back(s.tasks);
  c.microbatches = std::max(1, plan.microbatches);

  const TaskGraph& g = c.model.graph;
  const ValueId x = g.input_values()[0];
  const ValueId y = g.input_values()[1];
  const Shape xs = g.value(x).shape;
  const int mb_count = c.microbatches;
  c.make_batch = [x, y, xs, mb_count](int step) {
    std::vector<TensorMap> mbs;
    for (int j = 0; j < mb_count; ++j) {
      TensorMap mb;
      mb.emplace(x, Tensor::uniform(
                        xs, 1.0f,
                        1000 + 31 * static_cast<std::uint64_t>(step) +
                            static_cast<std::uint64_t>(j)));
      Tensor labels(Shape{xs.dims[0]});
      for (std::int64_t i = 0; i < xs.dims[0]; ++i)
        labels.at(i) = static_cast<float>((i + j + step) % 64);
      mb.emplace(y, std::move(labels));
      mbs.push_back(std::move(mb));
    }
    return mbs;
  };
  return c;
}

ModelCase make_bert_case() {
  BertConfig bc;
  bc.hidden = 384;
  bc.heads = 6;
  bc.layers = 2;
  bc.seq_len = 64;
  bc.vocab = 512;
  ModelCase c{"bert_tiny", build_bert(bc), {}, 1, nullptr};

  SearchRequest cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.devices_per_node = 2;
  cfg.cluster.device.memory_bytes = 5 * c.model.graph.num_params() * 4;
  cfg.batch_size = 4;
  cfg.num_blocks = 6;
  PartitionResult plan = auto_partition(c.model.graph, cfg).plan;
  if (!plan.feasible) {
    std::fprintf(stderr, "bert partition infeasible: %s\n",
                 plan.infeasible_reason.c_str());
    std::exit(1);
  }
  for (const StagePlan& s : plan.stages) c.stage_tasks.push_back(s.tasks);
  c.microbatches = std::max(1, plan.microbatches);

  const TaskGraph& g = c.model.graph;
  ValueId ids = -1, mask = -1, labels = -1;
  for (ValueId v : g.input_values()) {
    const std::string& n = g.value(v).name;
    if (n == "input_ids") ids = v;
    if (n == "attention_mask") mask = v;
    if (n == "mlm_labels") labels = v;
  }
  const std::int64_t seq = bc.seq_len, vocab = bc.vocab;
  const int mb_count = c.microbatches;
  c.make_batch = [ids, mask, labels, seq, vocab, mb_count](int step) {
    std::vector<TensorMap> mbs;
    for (int j = 0; j < mb_count; ++j) {
      TensorMap mb;
      Tensor tok(Shape{seq});
      Tensor lab(Shape{seq});
      for (std::int64_t i = 0; i < seq; ++i) {
        tok.at(i) = static_cast<float>((3 + 7 * i + j + step) % vocab);
        lab.at(i) = static_cast<float>((5 + 11 * i + 2 * j + step) % vocab);
      }
      mb.emplace(ids, std::move(tok));
      mb.emplace(mask, Tensor::zeros(Shape{1, seq, seq}));
      mb.emplace(labels, std::move(lab));
      mbs.push_back(std::move(mb));
    }
    return mbs;
  };
  return c;
}

RunResult run_case(const ModelCase& c, const RunConfig& rc, int steps,
                   ThreadPool* pool) {
  set_naive_kernels(rc.naive);
  Arena::global().set_enabled(rc.arena);
  set_kernel_pool(pool);

  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 42;
  popt.eager_snapshots = rc.eager;
  PipelineTrainer pipeline(c.model.graph, c.stage_tasks, popt);

  RunResult r;
  pipeline.step(c.make_batch(0));  // warmup: populate arena, lazy opt state
  const auto s0 = Arena::global().stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int step = 1; step <= steps; ++step)
    r.losses.push_back(pipeline.step(c.make_batch(step)));
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto s1 = Arena::global().stats();

  r.steps_per_sec = steps / dt;
  r.ms_per_step = 1e3 * dt / steps;
  r.fresh_bytes_per_step =
      static_cast<double>(s1.fresh_bytes - s0.fresh_bytes) / steps;
  const double allocs = static_cast<double>(s1.allocs - s0.allocs);
  r.arena_hit_rate =
      allocs > 0 ? static_cast<double>(s1.pool_hits - s0.pool_hits) / allocs
                 : 0;
  r.final_loss = r.losses.back();

  set_naive_kernels(false);
  Arena::global().set_enabled(true);
  set_kernel_pool(nullptr);
  Arena::global().trim();
  return r;
}

std::string json_run(const RunResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"steps_per_sec\": %.3f, \"ms_per_step\": %.2f, "
                "\"fresh_bytes_per_step\": %.0f, \"arena_hit_rate\": %.4f, "
                "\"final_loss\": %.6f}",
                r.steps_per_sec, r.ms_per_step, r.fresh_bytes_per_step,
                r.arena_hit_rate, static_cast<double>(r.final_loss));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double gate = 5.0;
  std::string out = "BENCH_RUNTIME.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") quick = true;
    else if (a == "--out" && i + 1 < argc) out = argv[++i];
    else if (a == "--gate" && i + 1 < argc) gate = std::atof(argv[++i]);
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE] [--gate X]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== Runtime raw speed: naive seed path vs blocked+arena+CoW ==\n");
  std::printf("SIMD blocked kernels: %s\n\n",
              detail::blocked_kernels_simd() ? "AVX2+FMA" : "portable C");

  std::vector<ModelCase> cases;
  cases.push_back(make_mlp_case());
  cases.push_back(make_bert_case());

  const RunConfig naive_cfg{/*naive=*/true, /*eager=*/true, /*arena=*/false};
  const RunConfig fast_cfg{/*naive=*/false, /*eager=*/false, /*arena=*/true};

  double min_speedup = 1e30;
  bool parity_ok = true, threads_ok = true;
  std::string models_json;
  for (const ModelCase& c : cases) {
    const int naive_steps = quick ? 1 : 3;
    const int fast_steps = quick ? 4 : 15;
    RunResult naive = run_case(c, naive_cfg, naive_steps, nullptr);
    RunResult fast = run_case(c, fast_cfg, fast_steps, nullptr);
    const double speedup = fast.steps_per_sec / naive.steps_per_sec;
    min_speedup = std::min(min_speedup, speedup);

    // Loss parity: the fast path must train to the same loss as the seed
    // path (same threshold as bench_loss_parity).
    const int cmp = std::min(naive_steps, fast_steps);
    float loss_diff = 0;
    for (int i = 0; i < cmp; ++i)
      loss_diff = std::max(
          loss_diff, std::fabs(naive.losses[static_cast<std::size_t>(i)] -
                               fast.losses[static_cast<std::size_t>(i)]));
    parity_ok = parity_ok && loss_diff < 1e-3f;

    // Thread bit-identity: the fast path must produce byte-identical losses
    // with 1 and 4 kernel threads.
    ThreadPool solo(0), wide(3);
    RunResult t1 = run_case(c, fast_cfg, quick ? 2 : 4, &solo);
    RunResult t4 = run_case(c, fast_cfg, quick ? 2 : 4, &wide);
    const bool bit_identical =
        t1.losses.size() == t4.losses.size() &&
        std::memcmp(t1.losses.data(), t4.losses.data(),
                    t1.losses.size() * sizeof(float)) == 0;
    threads_ok = threads_ok && bit_identical;

    std::printf("%-10s stages=%zu mb=%d\n", c.name.c_str(),
                c.stage_tasks.size(), c.microbatches);
    std::printf("  naive: %8.2f ms/step  %10.0f fresh B/step\n",
                naive.ms_per_step, naive.fresh_bytes_per_step);
    std::printf("  fast:  %8.2f ms/step  %10.0f fresh B/step  hit %.1f%%\n",
                fast.ms_per_step, fast.fresh_bytes_per_step,
                100 * fast.arena_hit_rate);
    std::printf("  speedup %.2fx  loss diff %.2e  threads 1==4: %s\n\n",
                speedup, static_cast<double>(loss_diff),
                bit_identical ? "bit-identical" : "MISMATCH");

    if (!models_json.empty()) models_json += ",\n";
    char head[256];
    std::snprintf(head, sizeof head,
                  "    {\"name\": \"%s\", \"stages\": %zu, "
                  "\"microbatches\": %d,\n",
                  c.name.c_str(), c.stage_tasks.size(), c.microbatches);
    char tail[256];
    std::snprintf(tail, sizeof tail,
                  ",\n     \"speedup\": %.3f, \"max_loss_diff\": %.3e, "
                  "\"thread_bit_identical\": %s}",
                  speedup, static_cast<double>(loss_diff),
                  bit_identical ? "true" : "false");
    models_json += std::string(head) + "     \"naive\": " + json_run(naive) +
                   ",\n     \"fast\": " + json_run(fast) + tail;
  }

  const bool gate_ok = gate <= 0 || min_speedup >= gate;
  const bool pass = gate_ok && parity_ok && threads_ok;
  std::ofstream f(out);
  f << "{\n  \"schema\": \"rannc.bench_runtime.v1\",\n"
    << "  \"simd\": " << (detail::blocked_kernels_simd() ? "true" : "false")
    << ",\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
    << "  \"models\": [\n" << models_json << "\n  ],\n"
    << "  \"min_speedup\": " << min_speedup << ",\n"
    << "  \"gate\": " << gate << ",\n"
    << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  f.close();

  std::printf("min speedup %.2fx (gate %.1fx) -> %s\n", min_speedup, gate,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
