// Experiment E6 — partitioning cost and quality diagnostics supporting the
// Fig. 2/3 narrative and the design-choice ablations called out in
// DESIGN.md:
//  * atomic component counts vs model depth (paper: ~15k at 256 layers);
//  * block-count (k) sweep: balance quality vs search cost (paper fixes 32);
//  * balance-refinement ablation;
//  * DP search-space statistics (cells, memoized profile queries);
//  * search-engine benchmark: the parallel, memoized (S, MB) stage-DP sweep
//    across BERT / ResNet / GPT-2 geometries, emitted as
//    BENCH_PARTITIONER.json (search wall-clock, dp_cells, profile_queries,
//    memo hit rate, speedup vs the single-threaded unmemoized baseline, and
//    a bit-identical-plan check across every configuration).
//
// Usage: bench_partitioner [--quick] [--out FILE] [--trace FILE]
//   --quick   small geometries, single rep, skip the legacy diagnostic
//             sections (CI smoke mode)
//   --out     JSON output path (default BENCH_PARTITIONER.json)
//   --trace   additionally run one memoized 2-thread search on the first
//             geometry with the trace recorder attached and write the
//             Chrome trace-event JSON (search flame view + profile-memo
//             hit-rate counters) to FILE
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "rannc.h"

namespace {

using namespace rannc;

struct Geometry {
  std::string name;
  std::int64_t batch_size = 256;
  std::function<BuiltModel()> build;
};

struct ConfigResult {
  std::string label;
  int threads = 1;
  bool profile_memo = true;
  bool feasible = false;
  double search_seconds = 0;  ///< min over reps
  double wall_seconds = 0;    ///< min over reps, whole auto_partition
  std::int64_t dp_cells = 0;
  std::int64_t profile_queries = 0;
  std::int64_t profile_queries_saved = 0;
  std::int64_t memo_hits = 0;
  std::int64_t memo_misses = 0;
  double memo_hit_rate = 0;
  std::string plan_json;
};

std::vector<Geometry> make_geometries(bool quick) {
  std::vector<Geometry> gs;
  if (quick) {
    gs.push_back({"bert-h512-L8", 64, [] {
                    BertConfig bc;
                    bc.hidden = 512;
                    bc.layers = 8;
                    return build_bert(bc);
                  }});
    gs.push_back({"resnet50", 64, [] {
                    ResNetConfig rc;
                    rc.depth = 50;
                    return build_resnet(rc);
                  }});
    gs.push_back({"gpt2-h256-L4", 32, [] {
                    Gpt2Config gc;
                    gc.hidden = 256;
                    gc.layers = 4;
                    gc.seq_len = 256;
                    return build_gpt2(gc);
                  }});
  } else {
    gs.push_back({"bert-large-h1024-L24", 256, [] {
                    BertConfig bc;
                    bc.hidden = 1024;
                    bc.layers = 24;
                    return build_bert(bc);
                  }});
    gs.push_back({"resnet50", 256, [] {
                    ResNetConfig rc;
                    rc.depth = 50;
                    return build_resnet(rc);
                  }});
    gs.push_back({"gpt2-h768-L12", 64, [] {
                    Gpt2Config gc;
                    gc.hidden = 768;
                    gc.layers = 12;
                    return build_gpt2(gc);
                  }});
  }
  return gs;
}

ConfigResult run_config(const TaskGraph& graph, const Geometry& g,
                        const std::string& label, int threads,
                        bool profile_memo, int reps) {
  ConfigResult cr;
  cr.label = label;
  cr.threads = threads;
  cr.profile_memo = profile_memo;
  cr.search_seconds = 1e30;
  cr.wall_seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    SearchRequest req;
    req.batch_size = g.batch_size;
    req.budget.threads = threads;
    req.profile_memo = profile_memo;
    // This bench measures the exhaustive sweep (its counters are the
    // sentinel baseline); bench_search_scale covers the pruned engine.
    req.prune.enabled = false;
    PartitionResult r = auto_partition(graph, req).plan;
    cr.feasible = r.feasible;
    cr.search_seconds = std::min(cr.search_seconds, r.stats.search_seconds);
    cr.wall_seconds = std::min(cr.wall_seconds, r.stats.wall_seconds);
    cr.dp_cells = r.stats.dp_cells_visited;
    cr.profile_queries = r.stats.profile_queries;
    cr.profile_queries_saved = r.stats.profile_queries_saved;
    cr.memo_hits = r.stats.memo_hits;
    cr.memo_misses = r.stats.memo_misses;
    cr.memo_hit_rate = r.stats.memo_hit_rate();
    if (rep == 0) cr.plan_json = plan_to_json(r);
  }
  return cr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rannc;

  bool quick = false;
  std::string out_path = "BENCH_PARTITIONER.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE] [--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!quick) {
    std::printf("== Atomic component counts (BERT hidden 1024) ==\n");
    std::printf("%-7s %-8s %-8s %-8s\n", "layers", "tasks", "atomic",
                "cloned");
    for (std::int64_t L : {24LL, 96LL, 256LL}) {
      BertConfig bc;
      bc.hidden = 1024;
      bc.layers = L;
      BuiltModel bm = build_bert(bc);
      AtomicPartition ap = atomic_partition(bm.graph);
      std::printf("%-7lld %-8zu %-8zu %-8zu\n", static_cast<long long>(L),
                  ap.graph.num_tasks(), ap.comps.size(), ap.num_cloned_tasks);
    }

    std::printf("\n== Block count (k) sweep: BERT hidden 1024, 96 layers ==\n");
    std::printf("%-5s %-12s %-12s %-10s %-10s\n", "k", "max/mean", "cut(MiB)",
                "levels", "moves");
    {
      BertConfig bc;
      bc.hidden = 1024;
      bc.layers = 96;
      BuiltModel bm = build_bert(bc);
      AtomicPartition ap = atomic_partition(bm.graph);
      GraphProfiler prof(ap.graph, DeviceSpec{});
      for (int k : {8, 16, 32, 64}) {
        BlockPartitionConfig cfg;
        cfg.k = k;
        cfg.profile_batch = 8;
        BlockPartition bp = block_partition(ap, prof, cfg);
        double mx = 0, sum = 0;
        for (const Block& b : bp.blocks) {
          mx = std::max(mx, b.time());
          sum += b.time();
        }
        std::printf("%-5d %-12.3f %-12.1f %-10d %-10d\n", k,
                    mx / (sum / static_cast<double>(bp.blocks.size())),
                    static_cast<double>(bp.cut_bytes) / (1024.0 * 1024.0),
                    bp.coarsen_levels, bp.uncoarsen_moves);
      }
    }

    std::printf("\n== Uncoarsening ablation (k=32): inter-block traffic ==\n");
    {
      BertConfig bc;
      bc.hidden = 1024;
      bc.layers = 96;
      BuiltModel bm = build_bert(bc);
      AtomicPartition ap = atomic_partition(bm.graph);
      GraphProfiler prof(ap.graph, DeviceSpec{});
      for (bool unc : {false, true}) {
        BlockPartitionConfig cfg;
        cfg.k = 32;
        cfg.profile_batch = 8;
        cfg.uncoarsening = unc;
        BlockPartition bp = block_partition(ap, prof, cfg);
        std::printf(
            "  uncoarsening %-3s: cut = %.1f MiB (%d boundary moves)\n",
            unc ? "on" : "off",
            static_cast<double>(bp.cut_bytes) / (1024.0 * 1024.0),
            bp.uncoarsen_moves);
      }
    }

    std::printf("\n== Balance-refinement ablation (k=32) ==\n");
    {
      BertConfig bc;
      bc.hidden = 1024;
      bc.layers = 96;
      BuiltModel bm = build_bert(bc);
      AtomicPartition ap = atomic_partition(bm.graph);
      GraphProfiler prof(ap.graph, DeviceSpec{});
      for (bool refine : {false, true}) {
        BlockPartitionConfig cfg;
        cfg.k = 32;
        cfg.profile_batch = 8;
        cfg.balance_refinement = refine;
        BlockPartition bp = block_partition(ap, prof, cfg);
        double mx = 0, mn = 1e30;
        for (const Block& b : bp.blocks) {
          mx = std::max(mx, b.time());
          mn = std::min(mn, b.time());
        }
        std::printf("  refinement %-3s: block time spread max/min = %.2f\n",
                    refine ? "on" : "off", mx / mn);
      }
    }
  }

  // ---- Search-engine benchmark: parallel, memoized (S, MB) sweep ----------
  const int reps = quick ? 1 : 3;
  const std::vector<int> thread_counts = quick ? std::vector<int>{2}
                                               : std::vector<int>{2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("\n== Search engine: parallel + memoized (S, MB) sweep ==\n");
  std::printf("(hardware_concurrency = %u, reps = %d, min taken)\n", hw, reps);

  struct GeomResult {
    std::string name;
    std::int64_t batch_size = 0;
    std::size_t tasks = 0;
    std::vector<ConfigResult> configs;
    bool plans_identical = true;
  };
  std::vector<GeomResult> results;

  for (const Geometry& g : make_geometries(quick)) {
    BuiltModel bm = g.build();
    GeomResult gr;
    gr.name = g.name;
    gr.batch_size = g.batch_size;
    gr.tasks = bm.graph.num_tasks();

    gr.configs.push_back(
        run_config(bm.graph, g, "legacy-t1", 1, /*memo=*/false, reps));
    gr.configs.push_back(
        run_config(bm.graph, g, "memo-t1", 1, /*memo=*/true, reps));
    for (int t : thread_counts)
      gr.configs.push_back(run_config(bm.graph, g, "memo-t" + std::to_string(t),
                                      t, /*memo=*/true, reps));

    for (const ConfigResult& cr : gr.configs)
      if (cr.plan_json != gr.configs.front().plan_json)
        gr.plans_identical = false;

    const double base = gr.configs.front().search_seconds;
    std::printf("\n-- %s (BS=%lld, %zu tasks) --\n", g.name.c_str(),
                static_cast<long long>(g.batch_size), gr.tasks);
    std::printf("%-10s %-10s %-12s %-12s %-10s %-10s %-8s\n", "config",
                "search(s)", "dp_cells", "profiles", "saved", "hit_rate",
                "speedup");
    for (const ConfigResult& cr : gr.configs) {
      std::printf("%-10s %-10.3f %-12lld %-12lld %-10lld %-10.3f %-8.2f\n",
                  cr.label.c_str(), cr.search_seconds,
                  static_cast<long long>(cr.dp_cells),
                  static_cast<long long>(cr.profile_queries),
                  static_cast<long long>(cr.profile_queries_saved),
                  cr.memo_hit_rate,
                  cr.search_seconds > 0 ? base / cr.search_seconds : 0.0);
    }
    std::printf("  plans identical across configs: %s\n",
                gr.plans_identical ? "yes" : "NO");
    results.push_back(std::move(gr));
  }

  // ---- Optional traced run ------------------------------------------------
  // One memoized multi-thread search with the recorder attached: a flame
  // view of the sweep's worker lanes plus the cumulative profile-memo
  // hit/miss counter series ("profile_memo" counter events).
  if (!trace_path.empty()) {
    const Geometry g = make_geometries(quick).front();
    BuiltModel bm = g.build();
    obs::set_thread_name("main");
    obs::TraceRecorder rec;
    obs::set_recorder(&rec);
    run_config(bm.graph, g, "traced-memo-t2", 2, /*memo=*/true, /*reps=*/1);
    obs::set_recorder(nullptr);
    std::size_t memo_samples = 0;
    for (const obs::TraceEvent& e : rec.snapshot())
      if (e.ph == 'C' && e.name == "profile_memo") ++memo_samples;
    if (!rec.write_json_file(trace_path)) {
      RANNC_LOG_ERROR("cannot open " << trace_path << " for writing");
      return 1;
    }
    std::printf("\nwrote %s (%zu events, %zu memo hit-rate samples)\n",
                trace_path.c_str(), rec.event_count(), memo_samples);
    if (memo_samples == 0) {
      RANNC_LOG_ERROR("traced memoized run emitted no profile_memo counter "
                      "events");
      return 1;
    }
  }

  // ---- JSON emission ------------------------------------------------------
  std::ofstream os(out_path);
  if (!os) {
    RANNC_LOG_ERROR("cannot open " << out_path << " for writing");
    return 1;
  }
  os << "{\n";
  os << "  \"bench\": \"partitioner_search\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"geometries\": [\n";
  for (std::size_t gi = 0; gi < results.size(); ++gi) {
    const auto& gr = results[gi];
    const double base = gr.configs.front().search_seconds;
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(gr.name) << "\",\n";
    os << "      \"batch_size\": " << gr.batch_size << ",\n";
    os << "      \"tasks\": " << gr.tasks << ",\n";
    os << "      \"plans_identical\": "
       << (gr.plans_identical ? "true" : "false") << ",\n";
    os << "      \"configs\": [\n";
    for (std::size_t ci = 0; ci < gr.configs.size(); ++ci) {
      const auto& cr = gr.configs[ci];
      os << "        {\n";
      os << "          \"label\": \"" << json_escape(cr.label) << "\",\n";
      os << "          \"threads\": " << cr.threads << ",\n";
      os << "          \"profile_memo\": "
         << (cr.profile_memo ? "true" : "false") << ",\n";
      os << "          \"feasible\": " << (cr.feasible ? "true" : "false")
         << ",\n";
      os << "          \"search_seconds\": " << cr.search_seconds << ",\n";
      os << "          \"wall_seconds\": " << cr.wall_seconds << ",\n";
      os << "          \"dp_cells\": " << cr.dp_cells << ",\n";
      os << "          \"profile_queries\": " << cr.profile_queries << ",\n";
      os << "          \"profile_queries_saved\": " << cr.profile_queries_saved
         << ",\n";
      os << "          \"memo_hits\": " << cr.memo_hits << ",\n";
      os << "          \"memo_misses\": " << cr.memo_misses << ",\n";
      os << "          \"memo_hit_rate\": " << cr.memo_hit_rate << ",\n";
      os << "          \"speedup_vs_legacy\": "
         << (cr.search_seconds > 0 ? base / cr.search_seconds : 0.0) << "\n";
      os << "        }" << (ci + 1 < gr.configs.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (gi + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  os.close();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
