// Experiment E6 — partitioning cost and quality diagnostics supporting the
// Fig. 2/3 narrative and the design-choice ablations called out in
// DESIGN.md:
//  * atomic component counts vs model depth (paper: ~15k at 256 layers);
//  * block-count (k) sweep: balance quality vs search cost (paper fixes 32);
//  * balance-refinement ablation;
//  * DP search-space statistics (cells, memoized profile queries).
#include <cstdio>

#include "models/bert.h"
#include "partition/atomic.h"
#include "partition/auto_partitioner.h"
#include "partition/block.h"
#include "profiler/graph_profiler.h"

int main() {
  using namespace rannc;

  std::printf("== Atomic component counts (BERT hidden 1024) ==\n");
  std::printf("%-7s %-8s %-8s %-8s\n", "layers", "tasks", "atomic", "cloned");
  for (std::int64_t L : {24LL, 96LL, 256LL}) {
    BertConfig bc;
    bc.hidden = 1024;
    bc.layers = L;
    BuiltModel bm = build_bert(bc);
    AtomicPartition ap = atomic_partition(bm.graph);
    std::printf("%-7lld %-8zu %-8zu %-8zu\n", static_cast<long long>(L),
                ap.graph.num_tasks(), ap.comps.size(), ap.num_cloned_tasks);
  }

  std::printf("\n== Block count (k) sweep: BERT hidden 1024, 96 layers ==\n");
  std::printf("%-5s %-12s %-12s %-10s %-10s\n", "k", "max/mean", "cut(MiB)",
              "levels", "moves");
  {
    BertConfig bc;
    bc.hidden = 1024;
    bc.layers = 96;
    BuiltModel bm = build_bert(bc);
    AtomicPartition ap = atomic_partition(bm.graph);
    GraphProfiler prof(ap.graph, DeviceSpec{});
    for (int k : {8, 16, 32, 64}) {
      BlockPartitionConfig cfg;
      cfg.k = k;
      cfg.profile_batch = 8;
      BlockPartition bp = block_partition(ap, prof, cfg);
      double mx = 0, sum = 0;
      for (const Block& b : bp.blocks) {
        mx = std::max(mx, b.time());
        sum += b.time();
      }
      std::printf("%-5d %-12.3f %-12.1f %-10d %-10d\n", k,
                  mx / (sum / static_cast<double>(bp.blocks.size())),
                  static_cast<double>(bp.cut_bytes) / (1024.0 * 1024.0),
                  bp.coarsen_levels, bp.uncoarsen_moves);
    }
  }

  std::printf("\n== Uncoarsening ablation (k=32): inter-block traffic ==\n");
  {
    BertConfig bc;
    bc.hidden = 1024;
    bc.layers = 96;
    BuiltModel bm = build_bert(bc);
    AtomicPartition ap = atomic_partition(bm.graph);
    GraphProfiler prof(ap.graph, DeviceSpec{});
    for (bool unc : {false, true}) {
      BlockPartitionConfig cfg;
      cfg.k = 32;
      cfg.profile_batch = 8;
      cfg.uncoarsening = unc;
      BlockPartition bp = block_partition(ap, prof, cfg);
      std::printf("  uncoarsening %-3s: cut = %.1f MiB (%d boundary moves)\n",
                  unc ? "on" : "off",
                  static_cast<double>(bp.cut_bytes) / (1024.0 * 1024.0),
                  bp.uncoarsen_moves);
    }
  }

  std::printf("\n== Balance-refinement ablation (k=32) ==\n");
  {
    BertConfig bc;
    bc.hidden = 1024;
    bc.layers = 96;
    BuiltModel bm = build_bert(bc);
    AtomicPartition ap = atomic_partition(bm.graph);
    GraphProfiler prof(ap.graph, DeviceSpec{});
    for (bool refine : {false, true}) {
      BlockPartitionConfig cfg;
      cfg.k = 32;
      cfg.profile_batch = 8;
      cfg.balance_refinement = refine;
      BlockPartition bp = block_partition(ap, prof, cfg);
      double mx = 0, mn = 1e30;
      for (const Block& b : bp.blocks) {
        mx = std::max(mx, b.time());
        mn = std::min(mn, b.time());
      }
      std::printf("  refinement %-3s: block time spread max/min = %.2f\n",
                  refine ? "on" : "off", mx / mn);
    }
  }

  std::printf("\n== Full-search statistics (Algorithm 2) ==\n");
  std::printf("%-7s %-7s %-10s %-12s %-12s %-12s %-8s\n", "hidden", "layers",
              "blocks", "dp_invocs", "dp_cells", "profiles", "wall(s)");
  for (std::int64_t h : {1024LL, 2048LL}) {
    for (std::int64_t L : {24LL, 96LL, 256LL}) {
      BertConfig bc;
      bc.hidden = h;
      bc.layers = L;
      BuiltModel bm = build_bert(bc);
      PartitionConfig cfg;
      cfg.batch_size = 256;
      PartitionResult r = auto_partition(bm.graph, cfg);
      std::printf("%-7lld %-7lld %-10d %-12d %-12lld %-12lld %-8.2f\n",
                  static_cast<long long>(h), static_cast<long long>(L),
                  r.stats.blocks, r.stats.dp_invocations,
                  static_cast<long long>(r.stats.dp_cells_visited),
                  static_cast<long long>(r.stats.profile_queries),
                  r.stats.wall_seconds);
    }
  }
  return 0;
}
