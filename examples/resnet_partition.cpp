// Partition an enlarged (Big-Transfer-style) ResNet — the paper's Fig. 5
// workload — and render the resulting pipeline schedule as an ASCII Gantt.
//
// Usage: ./examples/resnet_partition [depth] [width_factor] [batch]
//        (defaults: 152 8 128 on one 8-GPU node)
#include <cstdio>
#include <cstdlib>

#include "rannc.h"

int main(int argc, char** argv) {
  using namespace rannc;
  ResNetConfig rc;
  rc.depth = argc > 1 ? std::atoi(argv[1]) : 152;
  rc.width_factor = argc > 2 ? std::atoll(argv[2]) : 8;
  const std::int64_t BS = argc > 3 ? std::atoll(argv[3]) : 128;

  BuiltModel rm = build_resnet(rc);
  std::printf("ResNet%dx%lld: %zu tasks, %.2fB parameters\n\n", rc.depth,
              static_cast<long long>(rc.width_factor), rm.graph.num_tasks(),
              static_cast<double>(rm.graph.num_params()) / 1e9);

  SearchRequest req;
  req.cluster = ClusterSpec{}.single_node();  // torchgpipe's setting
  req.batch_size = BS;
  PartitionResult plan = auto_partition(rm.graph, req).plan;
  std::printf("== RaNNC automatic plan (1 node, 8 GPUs) ==\n%s\n",
              describe(plan).c_str());

  if (plan.feasible && plan.stages.size() > 1) {
    std::vector<StageTimes> st;
    for (const StagePlan& s : plan.stages) st.push_back({s.t_f, s.t_b, 0});
    const ScheduleResult sched = simulate_gpipe(st, plan.microbatches);
    std::printf("synchronous pipeline schedule (F = forward, B = backward):\n%s",
                render_gantt(sched, static_cast<int>(plan.stages.size()), 100)
                    .c_str());
    std::printf("bubble fraction: %.1f%%\n\n", 100 * sched.bubble_fraction);
  }

  const BaselinePlan gp = plan_gpipe_model(rm, req.cluster, BS, 64);
  if (gp.feasible)
    std::printf("GPipe-Model (manual 8-stage balance, 64 microbatches): "
                "%.1f samples/s\nRaNNC:                                   "
                "                %.1f samples/s\n",
                gp.throughput(BS), plan.throughput(BS));
  else
    std::printf("GPipe-Model: %s\n", gp.reason.c_str());
  return 0;
}
