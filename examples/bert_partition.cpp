// Partition an enlarged BERT for the paper's 4-node x 8-V100 cluster and
// compare the automatic plan against the manual baselines.
//
// Usage: ./examples/bert_partition [hidden] [layers] [batch]
//        (defaults: 1024 48 256 — a 670M-parameter BERT)
#include <cstdio>
#include <cstdlib>

#include "rannc.h"

int main(int argc, char** argv) {
  using namespace rannc;
  BertConfig bc;
  bc.hidden = argc > 1 ? std::atoll(argv[1]) : 1024;
  bc.layers = argc > 2 ? std::atoll(argv[2]) : 48;
  const std::int64_t BS = argc > 3 ? std::atoll(argv[3]) : 256;

  std::printf("building BERT hidden=%lld layers=%lld seq=%lld ...\n",
              static_cast<long long>(bc.hidden),
              static_cast<long long>(bc.layers),
              static_cast<long long>(bc.seq_len));
  BuiltModel bm = build_bert(bc);
  std::printf("  %zu tasks, %zu values, %.2fB parameters\n\n",
              bm.graph.num_tasks(), bm.graph.num_values(),
              static_cast<double>(bm.graph.num_params()) / 1e9);

  SearchRequest req;
  req.batch_size = BS;  // default cluster = paper testbed
  PartitionResult plan = auto_partition(bm.graph, req).plan;

  std::printf("== RaNNC automatic plan ==\n%s", describe(plan).c_str());
  std::printf(
      "search: %zu atomic components -> %d blocks "
      "(%d coarsen levels, %d refinement moves), %lld DP cells, %.2fs\n\n",
      plan.stats.atomic_components, plan.stats.blocks,
      plan.stats.coarsen_levels, plan.stats.uncoarsen_moves,
      static_cast<long long>(plan.stats.dp_cells_visited),
      plan.stats.wall_seconds);

  std::printf("== manual baselines on the same model/cluster ==\n");
  auto report = [&](const BaselinePlan& p) {
    if (p.feasible)
      std::printf("  %-14s %8.1f samples/s (stages=%d replicas=%d tp=%d mb=%d)\n",
                  p.framework.c_str(), p.throughput(BS), p.stages, p.replicas,
                  p.tensor_parallel, p.microbatches);
    else
      std::printf("  %-14s %s\n", p.framework.c_str(), p.reason.c_str());
  };
  report(plan_data_parallel(bm, req.cluster, Precision::FP32, BS));
  report(plan_megatron(bm, req.cluster, Precision::FP32, BS));
  report(plan_gpipe_hybrid(bm, req.cluster, BS));
  report(plan_pipedream_2bw(bm, req.cluster, BS));
  if (plan.feasible)
    std::printf("  %-14s %8.1f samples/s\n", "RaNNC", plan.throughput(BS));
  return 0;
}
