// Quickstart: the core RaNNC workflow in ~40 lines.
//
//   1. Describe a model as a task graph (no parallelism annotations).
//   2. auto_partition() it for a cluster.
//   3. Run the resulting stages on the pipeline runtime.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "rannc.h"

int main() {
  using namespace rannc;

  // 1. An ordinary model description: a 4-layer MLP classifier. Note there
  //    is nothing about devices, stages or replicas in it.
  MlpConfig mc;
  mc.input_dim = 32;
  mc.hidden_dims = {64, 64, 64, 64};
  mc.num_classes = 10;
  mc.batch = 8;  // microbatch size the runtime will execute
  BuiltModel model = build_mlp(mc);
  std::printf("model: %zu tasks, %lld parameters\n", model.graph.num_tasks(),
              static_cast<long long>(model.graph.num_params()));

  // 2. Partition automatically for a small cluster. We shrink the device
  //    memory so the model cannot fit on one device — RaNNC must pipeline.
  SearchRequest req;
  req.cluster.num_nodes = 1;
  req.cluster.devices_per_node = 4;
  req.cluster.device.memory_bytes = 5 * model.graph.num_params() * 4;  // > model state, < state + activations
  req.batch_size = 32;
  req.num_blocks = 8;
  PartitionResult plan = auto_partition(model.graph, req).plan;
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  std::printf("\n%s\n", describe(plan).c_str());

  // 3. Execute the plan: one thread per stage, synchronous microbatched
  //    pipeline, gradient checkpointing on (as RaNNC does for >1 stage).
  std::vector<std::vector<TaskId>> stages;
  for (const StagePlan& s : plan.stages) stages.push_back(s.tasks);
  PipelineOptions opt;
  opt.opt.kind = OptimizerConfig::Kind::Adam;
  opt.opt.lr = 0.01f;
  opt.recompute = true;
  PipelineTrainer trainer(*plan.graph, stages, opt);

  const ValueId xin = plan.graph->input_values()[0];
  const ValueId yin = plan.graph->input_values()[1];
  const Shape& xs = plan.graph->value(xin).shape;
  for (int step = 0; step < 20; ++step) {
    std::vector<TensorMap> mbs;
    for (int j = 0; j < plan.microbatches; ++j) {
      TensorMap mb;
      mb.emplace(xin, Tensor::uniform(xs, 1.0f, 100 + static_cast<std::uint64_t>(step)));
      Tensor y(Shape{xs.dims[0]});
      for (std::int64_t i = 0; i < xs.dims[0]; ++i)
        y.at(i) = static_cast<float>(i % 10);
      mb.emplace(yin, std::move(y));
      mbs.push_back(std::move(mb));
    }
    const float loss = trainer.step(mbs);
    if (step % 5 == 0) std::printf("step %2d  loss %.4f\n", step, loss);
  }
  return 0;
}
