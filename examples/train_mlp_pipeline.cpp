// Real distributed-style training demo: train an MLP classifier on a
// synthetic task, with the model partitioned by RaNNC and executed on the
// multi-threaded pipeline runtime, side by side with single-device
// training. Prints both loss curves — they coincide (the staleness-free
// guarantee, validated quantitatively in bench_loss_parity).
//
// Usage: ./examples/train_mlp_pipeline [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "rannc.h"

int main(int argc, char** argv) {
  using namespace rannc;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 120;

  MlpConfig mc;
  mc.input_dim = 20;
  mc.hidden_dims = {64, 64, 64};
  mc.num_classes = 5;
  mc.batch = 8;
  BuiltModel model = build_mlp(mc);

  SearchRequest req;
  req.cluster.num_nodes = 1;
  req.cluster.devices_per_node = 3;
  req.cluster.device.memory_bytes = 5 * model.graph.num_params() * 4;  // > model state, < state + activations
  req.batch_size = 16;
  req.num_blocks = 6;
  PartitionResult plan = auto_partition(model.graph, req).plan;
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  std::printf("%s\n", describe(plan).c_str());

  std::vector<std::vector<TaskId>> stages;
  for (const StagePlan& s : plan.stages) stages.push_back(s.tasks);
  OptimizerConfig oc;
  oc.kind = OptimizerConfig::Kind::Adam;
  oc.lr = 0.01f;
  PipelineOptions popt;
  popt.opt = oc;
  popt.seed = 7;
  popt.recompute = true;
  PipelineTrainer pipeline(*plan.graph, stages, popt);
  Trainer single(*plan.graph, oc, /*seed=*/7);

  const ValueId xin = plan.graph->input_values()[0];
  const ValueId yin = plan.graph->input_values()[1];
  const Shape& xs = plan.graph->value(xin).shape;

  // Synthetic separable task: label = argmax over 5 fixed projections.
  Tensor proj = Tensor::uniform(Shape{mc.input_dim, 5}, 1.0f, 999);
  auto label_of = [&](const Tensor& x, std::int64_t row) {
    int best = 0;
    float bv = -1e30f;
    for (int c = 0; c < 5; ++c) {
      float acc = 0;
      for (std::int64_t i = 0; i < mc.input_dim; ++i)
        acc += x.at(row * mc.input_dim + i) * proj.at(i * 5 + c);
      if (acc > bv) {
        bv = acc;
        best = c;
      }
    }
    return static_cast<float>(best);
  };

  std::printf("%-6s %-14s %-14s\n", "step", "pipeline-loss", "single-loss");
  for (int step = 0; step < steps; ++step) {
    std::vector<TensorMap> mbs;
    for (int j = 0; j < plan.microbatches; ++j) {
      TensorMap mb;
      Tensor x = Tensor::uniform(xs, 1.0f,
                                 5000 + 17 * static_cast<std::uint64_t>(step) +
                                     static_cast<std::uint64_t>(j));
      Tensor y(Shape{xs.dims[0]});
      for (std::int64_t i = 0; i < xs.dims[0]; ++i) y.at(i) = label_of(x, i);
      mb.emplace(xin, std::move(x));
      mb.emplace(yin, std::move(y));
      mbs.push_back(std::move(mb));
    }
    const float lp = pipeline.step(mbs);
    const float ls = single.step(mbs);
    if (step % 20 == 0 || step == steps - 1)
      std::printf("%-6d %-14.5f %-14.5f\n", step, lp, ls);
  }
  std::printf("\nThe curves coincide: a RaNNC partition changes *where* ops\n"
              "run, never *what* is computed.\n");
  return 0;
}
