// Visualizes the two pipeline disciplines the paper contrasts
// (Section II-B): synchronous GPipe fill/drain (staleness-free, has a
// bubble) vs asynchronous 1F1B (no bubble, parameter staleness) — for a
// GPT-2 model partitioned by RaNNC.
//
// Usage: ./examples/pipeline_gantt [microbatches]
#include <cstdio>
#include <cstdlib>

#include "rannc.h"

int main(int argc, char** argv) {
  using namespace rannc;
  const int MB_override = argc > 1 ? std::atoi(argv[1]) : 0;

  Gpt2Config gc;  // GPT-2 small
  BuiltModel gm = build_gpt2(gc);
  std::printf("GPT-2: %zu tasks, %.0fM parameters\n", gm.graph.num_tasks(),
              static_cast<double>(gm.graph.num_params()) / 1e6);

  SearchRequest req;
  req.cluster = ClusterSpec{}.single_node();
  // Shrink device memory so the partitioner must pipeline GPT-2 small.
  req.cluster.device.memory_bytes = 2LL << 30;
  req.batch_size = 64;
  PartitionResult plan = auto_partition(gm.graph, req).plan;
  if (!plan.feasible) {
    std::printf("infeasible: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  const int MB = MB_override > 0 ? MB_override : plan.microbatches;
  std::printf("%s\n", describe(plan).c_str());

  std::vector<StageTimes> st;
  for (const StagePlan& s : plan.stages) st.push_back({s.t_f, s.t_b, 0});

  const ScheduleResult sync = simulate_gpipe(st, MB);
  std::printf("-- synchronous (GPipe, what RaNNC uses): %d microbatches --\n%s",
              MB, render_gantt(sync, static_cast<int>(st.size()), 110).c_str());
  std::printf("iteration %.1f ms, bubble %.1f%%\n\n", sync.iteration_time * 1e3,
              100 * sync.bubble_fraction);

  const ScheduleResult fb = simulate_1f1b_sync(st, MB);
  std::printf("-- synchronous 1F1B (same flush, bounded in-flight state) --\n%s",
              render_gantt(fb, static_cast<int>(st.size()), 110).c_str());
  std::printf("iteration %.1f ms, bubble %.1f%% — identical makespan to GPipe\n"
              "for balanced stages, but each stage holds at most S-s\n"
              "microbatches of activations instead of all of them.\n\n",
              fb.iteration_time * 1e3, 100 * fb.bubble_fraction);

  const ScheduleResult async_r = simulate_1f1b_async(st, MB);
  std::printf("-- asynchronous 1F1B (PipeDream-2BW) steady state --\n");
  std::printf("iteration %.1f ms, bubble %.1f%% — faster, but parameters go\n"
              "stale across in-flight microbatches (Section II-B), which no\n"
              "billion-parameter training run has survived.\n",
              async_r.iteration_time * 1e3, 100 * async_r.bubble_fraction);
  return 0;
}
